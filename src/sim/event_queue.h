#ifndef FABRICSIM_SIM_EVENT_QUEUE_H_
#define FABRICSIM_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/sim_time.h"

namespace fabricsim {

/// A single scheduled callback. Events with equal timestamps fire in
/// insertion order (FIFO tie-break via sequence number) so simulations
/// are fully deterministic.
struct Event {
  SimTime time;
  uint64_t seq;
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, seq).
class EventQueue {
 public:
  /// Schedules `action` at absolute simulated time `time`.
  void Push(SimTime time, std::function<void()> action);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Must not be empty.
  SimTime PeekTime() const;

  /// Removes and returns the earliest event. Must not be empty.
  Event Pop();

 private:
  struct Compare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Compare> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_SIM_EVENT_QUEUE_H_
