#include "src/sim/environment.h"

#include <utility>

namespace fabricsim {

Environment::Environment(uint64_t seed, ExecutionConfig execution)
    : rng_(seed, /*stream=*/1),
      executor_(std::make_unique<Executor>(execution)) {}

void Environment::Schedule(SimTime when, std::function<void()> action,
                           ScheduleOpts opts) {
  SimTime time = opts.absolute ? when : now_ + when;
  if (time < now_) time = now_;
  queue_.Push(time, std::move(action), opts.daemon);
}

}  // namespace fabricsim
