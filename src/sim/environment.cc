#include "src/sim/environment.h"

#include <utility>

namespace fabricsim {

Environment::Environment(uint64_t seed) : rng_(seed, /*stream=*/1) {}

void Environment::Schedule(SimTime delay, std::function<void()> action) {
  if (delay < 0) delay = 0;
  queue_.Push(now_ + delay, std::move(action));
}

void Environment::ScheduleAt(SimTime time, std::function<void()> action) {
  if (time < now_) time = now_;
  queue_.Push(time, std::move(action));
}

void Environment::ScheduleDaemon(SimTime delay, std::function<void()> action) {
  if (delay < 0) delay = 0;
  queue_.Push(now_ + delay, std::move(action), /*daemon=*/true);
}

void Environment::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.PeekTime() <= until) {
    Event ev = queue_.Pop();
    now_ = ev.time;
    ++events_executed_;
    ev.action();
  }
  if (now_ < until) now_ = until;
}

void Environment::RunAll() {
  // Daemon timers interleave normally while real work remains; once
  // only daemon events are left the simulation is quiescent (a live
  // Raft leader would otherwise heartbeat forever).
  while (queue_.has_real_events()) {
    Event ev = queue_.Pop();
    now_ = ev.time;
    ++events_executed_;
    ev.action();
  }
}

}  // namespace fabricsim
