#include "src/sim/environment.h"

#include <utility>

namespace fabricsim {

Environment::Environment(uint64_t seed) : rng_(seed, /*stream=*/1) {}

void Environment::Schedule(SimTime delay, std::function<void()> action) {
  if (delay < 0) delay = 0;
  queue_.Push(now_ + delay, std::move(action));
}

void Environment::ScheduleAt(SimTime time, std::function<void()> action) {
  if (time < now_) time = now_;
  queue_.Push(time, std::move(action));
}

void Environment::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.PeekTime() <= until) {
    Event ev = queue_.Pop();
    now_ = ev.time;
    ++events_executed_;
    ev.action();
  }
  if (now_ < until) now_ = until;
}

void Environment::RunAll() {
  while (!queue_.empty()) {
    Event ev = queue_.Pop();
    now_ = ev.time;
    ++events_executed_;
    ev.action();
  }
}

}  // namespace fabricsim
