#include "src/sim/event_queue.h"

#include <utility>

namespace fabricsim {

void EventQueue::Push(SimTime time, std::function<void()> action) {
  heap_.push(Event{time, next_seq_++, std::move(action)});
}

SimTime EventQueue::PeekTime() const { return heap_.top().time; }

Event EventQueue::Pop() {
  // priority_queue::top() returns const&; move via const_cast is safe
  // because we pop immediately afterwards.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return ev;
}

}  // namespace fabricsim
