#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace fabricsim {

namespace {
// Pre-sized on first use: even small simulations schedule thousands of
// events, so skipping the early geometric regrowths is free.
constexpr size_t kInitialCapacity = 1024;
}  // namespace

void EventQueue::Push(SimTime time, std::function<void()> action,
                      bool daemon) {
  if (heap_.capacity() == 0) heap_.reserve(kInitialCapacity);
  heap_.push_back(Event{time, next_seq_++, std::move(action), daemon});
  std::push_heap(heap_.begin(), heap_.end(), Compare{});
  if (!daemon) ++real_events_;
}

Event EventQueue::Pop() {
  std::pop_heap(heap_.begin(), heap_.end(), Compare{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  if (!ev.daemon) --real_events_;
  return ev;
}

}  // namespace fabricsim
