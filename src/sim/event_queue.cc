#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace fabricsim {

namespace {
// Pre-sized on first use: even small simulations schedule thousands of
// events, so skipping the early geometric regrowths is free.
constexpr size_t kInitialCapacity = 1024;
}  // namespace

void EventQueue::Push(SimTime time, std::function<void()> action) {
  if (heap_.capacity() == 0) heap_.reserve(kInitialCapacity);
  heap_.push_back(Event{time, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Compare{});
}

Event EventQueue::Pop() {
  std::pop_heap(heap_.begin(), heap_.end(), Compare{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

}  // namespace fabricsim
