#ifndef FABRICSIM_SIM_ENVIRONMENT_H_
#define FABRICSIM_SIM_ENVIRONMENT_H_

#include <cstdint>
#include <functional>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/event_queue.h"

namespace fabricsim {

class Tracer;  // src/obs/tracer.h

/// The discrete-event simulation environment: a virtual clock plus the
/// event queue. Single-threaded and deterministic for a given seed.
class Environment {
 public:
  explicit Environment(uint64_t seed = 1);

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `action` after `delay` (>= 0) simulated microseconds.
  void Schedule(SimTime delay, std::function<void()> action);

  /// Schedules a daemon event: it fires normally while real (non-
  /// daemon) work remains anywhere in the queue, but a queue holding
  /// only daemon events counts as drained. Perpetual self-re-arming
  /// control-plane timers (Raft heartbeats, election timeouts) use
  /// this so RunAll() terminates once the workload has fully drained.
  void ScheduleDaemon(SimTime delay, std::function<void()> action);

  /// Schedules `action` at absolute time `time` (clamped to now()).
  void ScheduleAt(SimTime time, std::function<void()> action);

  /// Runs events until the queue drains or the clock passes `until`.
  /// Events scheduled exactly at `until` still run.
  void RunUntil(SimTime until);

  /// Runs until no real (non-daemon) events remain. Equivalent to
  /// draining the queue when no daemon timers were ever scheduled.
  void RunAll();

  /// Number of events executed so far (for tests / diagnostics).
  uint64_t events_executed() const { return events_executed_; }

  /// Root RNG for this run; actors should Fork() their own streams.
  Rng& rng() { return rng_; }

  /// Lifecycle tracer shared by every actor in this environment.
  /// nullptr (the default) disables tracing: actors guard each hook
  /// with a null check, so the disabled path is a single branch and
  /// the simulation behaves identically either way. The tracer is a
  /// pure observer — it never schedules events or consumes randomness.
  Tracer* tracer() const { return tracer_; }
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t events_executed_ = 0;
  Rng rng_;
  Tracer* tracer_ = nullptr;
};

}  // namespace fabricsim

#endif  // FABRICSIM_SIM_ENVIRONMENT_H_
