#ifndef FABRICSIM_SIM_ENVIRONMENT_H_
#define FABRICSIM_SIM_ENVIRONMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/event_queue.h"
#include "src/sim/executor.h"

namespace fabricsim {

class Tracer;  // src/obs/tracer.h

/// Options for Environment::Schedule — the one scheduling entry point.
struct ScheduleOpts {
  /// Daemon events fire normally while real (non-daemon) work remains
  /// anywhere in the queue, but a queue holding only daemon events
  /// counts as drained. Perpetual self-re-arming control-plane timers
  /// (Raft heartbeats, election timeouts) use this so RunAll()
  /// terminates once the workload has fully drained.
  bool daemon = false;
  /// When set, `when` is an absolute simulated time (clamped to
  /// now()); otherwise it is a delay from now() (clamped to 0).
  bool absolute = false;
};

/// The discrete-event simulation environment: a virtual clock plus the
/// event queue. The event loop is deterministic for a given seed in
/// every execution mode; ExecutionMode::kThreaded only adds worker
/// threads that precompute block validation ahead of the virtual
/// clock (see src/sim/executor.h).
class Environment {
 public:
  explicit Environment(uint64_t seed = 1,
                       ExecutionConfig execution = ExecutionConfig());

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `action` at `when`: a delay (>= 0) from now() by
  /// default, or an absolute time with opts.absolute. This is the
  /// single scheduling surface every actor goes through.
  void Schedule(SimTime when, std::function<void()> action,
                ScheduleOpts opts = ScheduleOpts());

  /// Deprecated shim — use Schedule(delay, action, {.daemon = true}).
  void ScheduleDaemon(SimTime delay, std::function<void()> action) {
    Schedule(delay, std::move(action), ScheduleOpts{true, false});
  }

  /// Deprecated shim — use Schedule(time, action, {.absolute = true}).
  void ScheduleAt(SimTime time, std::function<void()> action) {
    Schedule(time, std::move(action), ScheduleOpts{false, true});
  }

  /// Runs events until the queue drains or the clock passes `until`.
  /// Events scheduled exactly at `until` still run.
  void RunUntil(SimTime until) { executor_->RunUntil(*this, until); }

  /// Runs until no real (non-daemon) events remain. Equivalent to
  /// draining the queue when no daemon timers were ever scheduled.
  void RunAll() { executor_->RunAll(*this); }

  /// Number of events executed so far (for tests / diagnostics).
  uint64_t events_executed() const { return events_executed_; }

  /// The run's execution engine: the event loop plus (in threaded
  /// mode) the worker pool commit pipelines borrow.
  Executor& executor() { return *executor_; }

  /// Root RNG for this run; actors should Fork() their own streams.
  Rng& rng() { return rng_; }

  /// Lifecycle tracer shared by every actor in this environment.
  /// nullptr (the default) disables tracing: actors guard each hook
  /// with a null check, so the disabled path is a single branch and
  /// the simulation behaves identically either way. The tracer is a
  /// pure observer — it never schedules events or consumes randomness.
  Tracer* tracer() const { return tracer_; }
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  friend class Executor;  // run loop reads queue_/now_/events_executed_

  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t events_executed_ = 0;
  Rng rng_;
  Tracer* tracer_ = nullptr;
  std::unique_ptr<Executor> executor_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_SIM_ENVIRONMENT_H_
