#include "src/sim/work_queue.h"

#include <utility>

namespace fabricsim {

void WorkQueue::Submit(Environment& env, std::function<SimTime()> at_start,
                       std::function<void()> at_end) {
  pending_.push_back(Task{env.now(), std::move(at_start), std::move(at_end)});
  if (!busy_) StartNext(env);
}

void WorkQueue::StartNext(Environment& env) {
  if (pending_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Task task = std::move(pending_.front());
  pending_.pop_front();
  queue_delay_stats_.Add(ToMillis(env.now() - task.submitted));
  SimTime service = 0;
  if (task.at_start) service = task.at_start();
  if (service < 0) service = 0;
  total_service_ += service;
  env.Schedule(service, [this, &env, at_end = std::move(task.at_end)]() {
    ++tasks_completed_;
    if (at_end) at_end();
    StartNext(env);
  });
}

}  // namespace fabricsim
