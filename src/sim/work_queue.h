#ifndef FABRICSIM_SIM_WORK_QUEUE_H_
#define FABRICSIM_SIM_WORK_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/sim/environment.h"

namespace fabricsim {

/// Models a serial server (a peer's validation pipeline, a chaincode
/// container, an orderer's delivery loop) inside a simulation actor.
/// Tasks run strictly FIFO; while the server is busy, submissions
/// queue up — this queueing is what produces the latency blow-ups the
/// paper observes under overload (e.g. CouchDB range scans).
///
/// A task has two phases:
///  * `at_start` runs when the server picks the task up. It performs
///    the data-plane work against *current* simulation state (e.g.
///    executes a chaincode against the replica as of that moment) and
///    returns the service time the work costs.
///  * `at_end` runs when the service time has elapsed (commit point).
class WorkQueue {
 public:
  explicit WorkQueue(std::string name = "work") : name_(std::move(name)) {}

  /// Enqueues a task. See class comment for phase semantics. Either
  /// callback may be empty.
  void Submit(Environment& env, std::function<SimTime()> at_start,
              std::function<void()> at_end);

  /// Number of tasks waiting or in service.
  size_t depth() const { return pending_.size() + (busy_ ? 1 : 0); }

  bool busy() const { return busy_; }

  /// Total service time consumed so far (utilization numerator).
  SimTime total_service() const { return total_service_; }

  uint64_t tasks_completed() const { return tasks_completed_; }

  /// Distribution of queueing delays (submit -> start), milliseconds.
  const SummaryStats& queue_delay_stats() const { return queue_delay_stats_; }

  const std::string& name() const { return name_; }

 private:
  struct Task {
    SimTime submitted;
    std::function<SimTime()> at_start;
    std::function<void()> at_end;
  };

  void StartNext(Environment& env);

  std::string name_;
  std::deque<Task> pending_;
  bool busy_ = false;
  SimTime total_service_ = 0;
  uint64_t tasks_completed_ = 0;
  SummaryStats queue_delay_stats_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_SIM_WORK_QUEUE_H_
