#ifndef FABRICSIM_SIM_NETWORK_H_
#define FABRICSIM_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/environment.h"

namespace fabricsim {

/// Identifies a simulation node (client, peer or orderer).
using NodeId = int32_t;

/// Parameters of the network delay model. Delays are
///   base + U(-jitter, +jitter) + bytes / bandwidth + injected(src/dst)
/// where `injected` is the Pumba-style per-node chaos delay.
struct NetworkConfig {
  /// One-way base latency between any two distinct nodes.
  SimTime base_latency = 300;  // 0.3 ms: intra-datacenter gRPC hop
  /// Uniform jitter half-width added to every message.
  SimTime jitter = 150;
  /// Payload cost in bytes per microsecond (~1 GB/s by default).
  double bandwidth_bytes_per_us = 1000.0;
};

/// Pumba-style injected delay for a node: extra ± jitter, e.g. the
/// paper's 100 ± 10 ms on all peers of one organization (Fig. 16).
/// Active only while the simulated clock is inside [from, to); the
/// defaults cover the whole run, matching the legacy always-on knob.
struct InjectedDelay {
  SimTime extra = 0;
  SimTime jitter = 0;
  SimTime from = 0;
  SimTime to = kSimTimeNever;
};

/// Per-link message-loss rule: messages between `a` and `b` (either
/// direction when `bidirectional`, -1 wildcards a side) are dropped
/// with probability `drop_prob` while now is in [from, to).
/// drop_prob >= 1 is a hard partition and consumes no randomness.
struct LinkFaultRule {
  NodeId a = -1;
  NodeId b = -1;
  bool bidirectional = true;
  double drop_prob = 1.0;
  SimTime from = 0;
  SimTime to = kSimTimeNever;
};

/// Simulated message-passing network with deterministic, seeded
/// randomness. Delivery preserves causality but not ordering (two
/// messages can overtake each other thanks to jitter), like UDP/gRPC
/// streams across distinct connections.
class Network {
 public:
  Network(NetworkConfig config, Rng rng)
      : config_(config), rng_(std::move(rng)) {}

  /// Adds a chaos-injected delay window applied to every message into
  /// or out of `node`. Multiple windows per node stack.
  void InjectDelay(NodeId node, InjectedDelay delay) {
    injected_[node].push_back(delay);
  }

  /// Adds a probabilistic message-loss rule. Rules with a drop_prob in
  /// (0, 1) draw from the fault RNG (see set_fault_rng); install one
  /// before adding such rules.
  void AddLinkFault(LinkFaultRule rule) { link_faults_.push_back(rule); }

  /// Dedicated RNG stream for loss decisions, so probabilistic drops
  /// never perturb the delay-jitter stream (a run whose faults are all
  /// deterministic stays draw-for-draw identical to a fault-free run).
  void set_fault_rng(Rng rng) { fault_rng_ = std::move(rng); }
  bool has_fault_rng() const { return fault_rng_.has_value(); }

  /// Samples the one-way delay for a message of `bytes` from -> to at
  /// simulated time `now` (delay windows are evaluated against `now`).
  SimTime SampleDelay(NodeId from, NodeId to, uint64_t bytes, SimTime now);

  /// True when a loss rule active at `now` drops this message.
  bool ShouldDrop(NodeId from, NodeId to, SimTime now);

  /// Schedules `deliver` after the sampled network delay, unless an
  /// active link fault drops the message (then `deliver` never runs).
  void Send(Environment& env, NodeId from, NodeId to, uint64_t bytes,
            std::function<void()> deliver);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  NetworkConfig config_;
  Rng rng_;
  std::unordered_map<NodeId, std::vector<InjectedDelay>> injected_;
  std::vector<LinkFaultRule> link_faults_;
  std::optional<Rng> fault_rng_;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_SIM_NETWORK_H_
