#ifndef FABRICSIM_SIM_NETWORK_H_
#define FABRICSIM_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/environment.h"

namespace fabricsim {

/// Identifies a simulation node (client, peer or orderer).
using NodeId = int32_t;

/// Parameters of the network delay model. Delays are
///   base + U(-jitter, +jitter) + bytes / bandwidth + injected(src/dst)
/// where `injected` is the Pumba-style per-node chaos delay.
struct NetworkConfig {
  /// One-way base latency between any two distinct nodes.
  SimTime base_latency = 300;  // 0.3 ms: intra-datacenter gRPC hop
  /// Uniform jitter half-width added to every message.
  SimTime jitter = 150;
  /// Payload cost in bytes per microsecond (~1 GB/s by default).
  double bandwidth_bytes_per_us = 1000.0;
};

/// Pumba-style injected delay for a node: extra ± jitter, e.g. the
/// paper's 100 ± 10 ms on all peers of one organization (Fig. 16).
struct InjectedDelay {
  SimTime extra = 0;
  SimTime jitter = 0;
};

/// Simulated message-passing network with deterministic, seeded
/// randomness. Delivery preserves causality but not ordering (two
/// messages can overtake each other thanks to jitter), like UDP/gRPC
/// streams across distinct connections.
class Network {
 public:
  Network(NetworkConfig config, Rng rng)
      : config_(config), rng_(std::move(rng)) {}

  /// Adds a chaos-injected delay applied to every message into or out
  /// of `node`.
  void InjectDelay(NodeId node, InjectedDelay delay) {
    injected_[node] = delay;
  }

  /// Samples the one-way delay for a message of `bytes` from -> to.
  SimTime SampleDelay(NodeId from, NodeId to, uint64_t bytes);

  /// Schedules `deliver` after the sampled network delay.
  void Send(Environment& env, NodeId from, NodeId to, uint64_t bytes,
            std::function<void()> deliver);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  NetworkConfig config_;
  Rng rng_;
  std::unordered_map<NodeId, InjectedDelay> injected_;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_SIM_NETWORK_H_
