#include "src/sim/network.h"

#include <utility>

namespace fabricsim {

SimTime Network::SampleDelay(NodeId from, NodeId to, uint64_t bytes) {
  if (from == to) return 0;
  double delay = static_cast<double>(config_.base_latency);
  if (config_.jitter > 0) {
    delay += rng_.UniformRange(-static_cast<double>(config_.jitter),
                               static_cast<double>(config_.jitter));
  }
  if (config_.bandwidth_bytes_per_us > 0) {
    delay += static_cast<double>(bytes) / config_.bandwidth_bytes_per_us;
  }
  for (NodeId node : {from, to}) {
    auto it = injected_.find(node);
    if (it == injected_.end()) continue;
    double extra = static_cast<double>(it->second.extra);
    if (it->second.jitter > 0) {
      extra += rng_.UniformRange(-static_cast<double>(it->second.jitter),
                                 static_cast<double>(it->second.jitter));
    }
    delay += extra;
  }
  if (delay < 1.0) delay = 1.0;
  return static_cast<SimTime>(delay);
}

void Network::Send(Environment& env, NodeId from, NodeId to, uint64_t bytes,
                   std::function<void()> deliver) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  env.Schedule(SampleDelay(from, to, bytes), std::move(deliver));
}

}  // namespace fabricsim
