#include "src/sim/network.h"

#include <utility>

namespace fabricsim {

SimTime Network::SampleDelay(NodeId from, NodeId to, uint64_t bytes,
                             SimTime now) {
  if (from == to) return 0;
  double delay = static_cast<double>(config_.base_latency);
  if (config_.jitter > 0) {
    delay += rng_.UniformRange(-static_cast<double>(config_.jitter),
                               static_cast<double>(config_.jitter));
  }
  if (config_.bandwidth_bytes_per_us > 0) {
    delay += static_cast<double>(bytes) / config_.bandwidth_bytes_per_us;
  }
  for (NodeId node : {from, to}) {
    auto it = injected_.find(node);
    if (it == injected_.end()) continue;
    for (const InjectedDelay& window : it->second) {
      if (now < window.from || now >= window.to) continue;
      double extra = static_cast<double>(window.extra);
      if (window.jitter > 0) {
        extra += rng_.UniformRange(-static_cast<double>(window.jitter),
                                   static_cast<double>(window.jitter));
      }
      delay += extra;
    }
  }
  if (delay < 1.0) delay = 1.0;
  return static_cast<SimTime>(delay);
}

bool Network::ShouldDrop(NodeId from, NodeId to, SimTime now) {
  for (const LinkFaultRule& rule : link_faults_) {
    if (now < rule.from || now >= rule.to) continue;
    bool forward = (rule.a == -1 || rule.a == from) &&
                   (rule.b == -1 || rule.b == to);
    bool reverse = rule.bidirectional && (rule.a == -1 || rule.a == to) &&
                   (rule.b == -1 || rule.b == from);
    if (!forward && !reverse) continue;
    if (rule.drop_prob >= 1.0) return true;
    if (rule.drop_prob <= 0.0) continue;
    if (fault_rng_.has_value() && fault_rng_->Bernoulli(rule.drop_prob)) {
      return true;
    }
  }
  return false;
}

void Network::Send(Environment& env, NodeId from, NodeId to, uint64_t bytes,
                   std::function<void()> deliver) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  if (!link_faults_.empty() && ShouldDrop(from, to, env.now())) {
    ++messages_dropped_;
    return;  // lost in transit; the callback is never invoked
  }
  env.Schedule(SampleDelay(from, to, bytes, env.now()), std::move(deliver));
}

}  // namespace fabricsim
