#include "src/sim/executor.h"

#include <memory>
#include <utility>

#include "src/common/parallel.h"
#include "src/sim/environment.h"

namespace fabricsim {

const char* ExecutionModeToString(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kSerial:
      return "serial";
    case ExecutionMode::kThreaded:
      return "threaded";
  }
  return "unknown";
}

Executor::Executor(ExecutionConfig config) : config_(config) {
  if (config_.mode != ExecutionMode::kThreaded) return;
  int threads = config_.threads > 0 ? config_.threads : ParallelJobs();
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void Executor::Async(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void Executor::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Caller-participates fan-out over an atomic index: helpers assist
  // when a worker is idle, but the caller claims indices too and the
  // work completes even if no helper ever runs.
  struct Stage {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n;
    const std::function<void(size_t)>* fn;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto stage = std::make_shared<Stage>();
  stage->n = n;
  stage->fn = &fn;
  auto drain = [](const std::shared_ptr<Stage>& s) {
    for (;;) {
      size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) return;
      (*s->fn)(i);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };
  size_t helpers = workers_.size();
  if (helpers > n - 1) helpers = n - 1;
  for (size_t h = 0; h < helpers; ++h) {
    Async([stage, drain] { drain(stage); });
  }
  drain(stage);
  std::unique_lock<std::mutex> lock(stage->mu);
  stage->cv.wait(lock, [&stage] {
    return stage->done.load(std::memory_order_acquire) == stage->n;
  });
}

void Executor::RunAll(Environment& env) {
  // Daemon timers interleave normally while real work remains; once
  // only daemon events are left the simulation is quiescent (a live
  // Raft leader would otherwise heartbeat forever).
  while (env.queue_.has_real_events()) {
    Event ev = env.queue_.Pop();
    env.now_ = ev.time;
    ++env.events_executed_;
    ev.action();
  }
}

void Executor::RunUntil(Environment& env, SimTime until) {
  while (!env.queue_.empty() && env.queue_.PeekTime() <= until) {
    Event ev = env.queue_.Pop();
    env.now_ = ev.time;
    ++env.events_executed_;
    ev.action();
  }
  if (env.now_ < until) env.now_ = until;
}

}  // namespace fabricsim
