#ifndef FABRICSIM_SIM_EXECUTOR_H_
#define FABRICSIM_SIM_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/sim_time.h"

namespace fabricsim {

class Environment;

/// How one simulation run uses the host machine.
///
///  * kSerial — the reference mode: a single pass over the event heap,
///    exactly the loop the simulator has always run.
///  * kThreaded — the event loop itself stays single-threaded (event
///    order, timestamps, and RNG draws are untouched), but worker
///    threads validate committed blocks *ahead of the virtual clock*:
///    block content is final when the ordering service cuts it, so
///    per-channel pipelines can race ahead speculatively and the main
///    loop just joins the precomputed outcome when the simulated
///    validation event fires. Bitwise-identical results by
///    construction.
enum class ExecutionMode { kSerial, kThreaded };

const char* ExecutionModeToString(ExecutionMode mode);

/// Intra-run execution knobs, carried by FabricConfig::execution.
/// Purely a simulator-performance setting: any value yields
/// bit-identical simulation results and is excluded from config
/// descriptions, artifacts, and fingerprints.
struct ExecutionConfig {
  ExecutionMode mode = ExecutionMode::kSerial;
  /// Worker threads in kThreaded mode; <= 0 resolves to ParallelJobs()
  /// (the FABRICSIM_JOBS setting). Ignored in kSerial mode.
  int threads = 0;
  /// Conservative-lookahead bound: how many cut-but-not-yet-validated
  /// blocks one channel's pipeline may buffer before the main loop
  /// waits for the worker to drain. Bounds speculation memory;
  /// <= 0 means unbounded.
  int lookahead_blocks = 64;

  static ExecutionConfig Serial() { return ExecutionConfig{}; }
  static ExecutionConfig Threaded(int threads = 0) {
    ExecutionConfig config;
    config.mode = ExecutionMode::kThreaded;
    config.threads = threads;
    return config;
  }
};

/// The single scheduling/execution surface of one simulation run. Owns
/// the run loop (RunAll/RunUntil over the environment's event heap)
/// and, in kThreaded mode, the worker pool that commit pipelines and
/// the parallel validator borrow. In kSerial mode every entry point
/// degenerates to inline execution on the caller's thread.
class Executor {
 public:
  explicit Executor(ExecutionConfig config);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  ExecutionMode mode() const { return config_.mode; }
  const ExecutionConfig& config() const { return config_; }
  /// Resolved worker count (0 in serial mode).
  int threads() const { return static_cast<int>(workers_.size()); }

  /// Runs events until no real (non-daemon) events remain.
  void RunAll(Environment& env);
  /// Runs events until the queue drains or the clock passes `until`.
  void RunUntil(Environment& env, SimTime until);

  /// Hands `task` to a worker thread (kThreaded), or runs it inline
  /// (kSerial / no workers). Tasks must not touch the environment:
  /// they run concurrently with the event loop.
  void Async(std::function<void()> task);

  /// Runs fn(0..n-1), using idle workers when available. The calling
  /// thread always participates and self-drains the index space, so
  /// this is deadlock-free even when every pool worker is busy (e.g.
  /// when called from inside an Async task). `fn` must not throw.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  ExecutionConfig config_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_SIM_EXECUTOR_H_
