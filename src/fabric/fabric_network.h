#ifndef FABRICSIM_FABRIC_FABRIC_NETWORK_H_
#define FABRICSIM_FABRIC_FABRIC_NETWORK_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/admission/admission.h"
#include "src/chaincode/chaincode.h"
#include "src/chaincode/registry.h"
#include "src/channels/channel_types.h"
#include "src/channels/commit_pipeline.h"
#include "src/client/client.h"
#include "src/common/status.h"
#include "src/ext/fabricpp/reorderer.h"
#include "src/ext/fabricsharp/fabricsharp.h"
#include "src/fabric/network_config.h"
#include "src/faults/fault_injector.h"
#include "src/ledger/block_store.h"
#include "src/ledger/ledger_stats.h"
#include "src/obs/tracer.h"
#include "src/ordering/orderer.h"
#include "src/ordering/raft_group.h"
#include "src/peer/peer.h"
#include "src/policy/endorsement_policy.h"
#include "src/sim/environment.h"
#include "src/sim/network.h"
#include "src/workload/population/client_population.h"
#include "src/workload/workload_generator.h"

namespace fabricsim {

/// A fully wired Fabric network inside one simulation environment:
/// clients, endorsing peers grouped into organizations, the ordering
/// service, the configured variant's ordering processor, and the
/// canonical ledger recorded from the reference peer.
///
/// The network hosts config.num_channels channels. Every channel is a
/// full E-O-V pipeline of its own — its own ordering service (one
/// block cutter / Raft log per channel, multiplexed over the shared
/// orderer node ids), its own world-state replica and hash chain on
/// every peer, and its own canonical ledger — while the peers'
/// endorsement and validation resources are shared, which is where
/// cross-channel interference comes from. A single-channel network is
/// byte-identical to the pre-channel simulator.
///
/// Usage:
///   Environment env(seed);
///   FabricNetwork network(config, &env, chaincode, workload);
///   auto st = network.Init();
///   network.StartLoad(/*tps=*/100, /*duration=*/FromSeconds(180));
///   env.RunAll();           // drains in-flight work after the load
///   const BlockStore& ledger = network.ledger();
class FabricNetwork {
 public:
  FabricNetwork(FabricConfig config, Environment* env,
                std::shared_ptr<Chaincode> chaincode,
                std::shared_ptr<WorkloadGenerator> workload);
  ~FabricNetwork();

  FabricNetwork(const FabricNetwork&) = delete;
  FabricNetwork& operator=(const FabricNetwork&) = delete;

  /// Instantiates `chaincode` on one channel (Fabric's per-channel
  /// chaincode namespace). Must be called before Init(); channels
  /// without an installation run the constructor's chaincode.
  Status InstallChaincode(ChannelId channel,
                          std::shared_ptr<Chaincode> chaincode);

  /// Channel-popularity / client-pinning model applied when the load
  /// starts. Must be set before StartLoad(); ignored with one channel.
  void set_channel_affinity(const ChannelAffinityConfig& affinity) {
    channel_affinity_ = affinity;
  }

  /// Builds and bootstraps all actors. Must be called exactly once
  /// before StartLoad().
  Status Init();

  /// Starts the open-loop clients: `total_rate_tps` combined arrival
  /// rate for `duration` of simulated time. Run the environment to
  /// completion afterwards to drain the pipeline. Legacy entry point —
  /// equivalent to a single-class population spread evenly over
  /// cluster.num_clients, always expanded to per-client actors.
  void StartLoad(double total_rate_tps, SimTime duration);

  /// Population-based load: one behaviour class at a time, expanded to
  /// per-user Client actors below population.aggregation_threshold and
  /// represented by one aggregated arrival-process actor (superposed
  /// Poisson, optional MMPP modulation) at or above it. Small
  /// populations are bitwise identical to the legacy per-client path.
  /// `class_workloads[i]` overrides the network's workload for class i
  /// (nullptr entries — or an empty vector — fall back to the shared
  /// workload).
  Status StartLoad(
      const PopulationConfig& population, SimTime duration,
      std::vector<std::shared_ptr<WorkloadGenerator>> class_workloads = {});

  int num_channels() const {
    return config_.num_channels < 1 ? 1 : config_.num_channels;
  }

  /// Canonical ledger of the default channel (from the reference
  /// peer), including failed transactions — parse it for metrics, as
  /// the paper does.
  const BlockStore& ledger() const { return channels_[0].ledger; }
  /// Canonical ledger of one channel.
  const BlockStore& ledger(ChannelId channel) const {
    return channels_[static_cast<size_t>(channel)].ledger;
  }

  const RunStats& stats() const { return stats_; }
  const FabricConfig& config() const { return config_; }

  /// Streaming ledger aggregates; nullptr unless
  /// config.streaming_ledger. When set, the BlockStore ledgers above
  /// stay empty — commits fold here instead.
  const StreamingLedgerStats* ledger_stats() const {
    return ledger_stats_.get();
  }

  /// Lifecycle tracer; nullptr unless config.tracing was set before
  /// Init(). When present it holds one TxTrace per generated
  /// transaction (complete span chain + failure attribution) and the
  /// per-phase latency histograms.
  const Tracer* tracer() const { return tracer_.get(); }

  const EndorsementPolicy& policy() const { return *policy_; }
  const Network& net() const { return *net_; }
  /// Legacy single-leader orderer of the default channel. Only valid
  /// in compat mode (config.ordering.replicated == false).
  Orderer& orderer() { return *channels_[0].orderer; }
  Orderer& orderer(ChannelId channel) {
    return *channels_[static_cast<size_t>(channel)].orderer;
  }
  /// Replicated ordering service of the default channel; nullptr in
  /// compat mode.
  const RaftGroup* raft() const { return channels_[0].raft.get(); }
  RaftGroup* raft() { return channels_[0].raft.get(); }
  RaftGroup* raft(ChannelId channel) {
    return channels_[static_cast<size_t>(channel)].raft.get();
  }
  /// Transaction ids whose ordering ack reached a client (replicated
  /// mode; empty in compat mode), per channel. Input to the invariant
  /// checker's no-acked-tx-lost audit.
  const std::vector<TxId>& acked_txs(ChannelId channel = 0) const {
    return acked_txs_by_channel_[static_cast<size_t>(channel)];
  }
  const std::vector<std::unique_ptr<Peer>>& peers() const { return peers_; }

  /// Chaincode serving `channel` (the channel's installation, or the
  /// constructor's default).
  Chaincode* chaincode_for(ChannelId channel) const;

  /// Variant processor stats (null when the variant is not active).
  const FabricPlusPlusProcessor* fabricpp() const { return fabricpp_.get(); }
  const FabricSharpProcessor* fabricsharp() const {
    return fabricsharp_.get();
  }

  /// Fault injector; nullptr when config.faults is empty. Exposes the
  /// fault transitions that fired during the run.
  const FaultInjector* fault_injector() const { return fault_injector_.get(); }

  /// Overload-protection counters; nullptr unless config.admission is
  /// an enabled config (the legacy pipeline allocates nothing).
  const AdmissionStats* admission_stats() const {
    return admission_stats_.get();
  }

 private:
  /// Everything the harness keeps per channel: that channel's ordering
  /// service (exactly one of orderer/raft is set), the cut blocks
  /// still awaiting the reference peer's commit, and the recorded
  /// canonical ledger.
  struct ChannelRuntime {
    std::unique_ptr<Orderer> orderer;  ///< compat mode
    std::unique_ptr<RaftGroup> raft;   ///< replicated mode
    std::map<uint64_t, std::shared_ptr<Block>> canonical_blocks;
    BlockStore ledger;
  };

  void RecordCommit(ChannelId channel, uint64_t block_number,
                    const ValidationOutcome& outcome);
  /// Crash-recovery catch-up source: the canonical block with this
  /// number on this channel, whether it is still awaiting the
  /// reference commit or already on the recorded ledger. nullptr when
  /// not yet cut.
  std::shared_ptr<const Block> FetchCanonicalBlock(ChannelId channel,
                                                   uint64_t number) const;

  FabricConfig config_;
  Environment* env_;
  std::shared_ptr<Chaincode> chaincode_;
  std::shared_ptr<WorkloadGenerator> workload_;
  /// Per-channel chaincode installations, keyed (channel, name); the
  /// constructor's chaincode is registered on the default channel so
  /// every channel inherits it unless overridden.
  ChaincodeRegistry chaincode_registry_;
  ChannelAffinityConfig channel_affinity_;

  std::unique_ptr<EndorsementPolicy> policy_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<ValidationOutcomeCache> validation_cache_;
  /// Threaded execution mode only (see src/channels/commit_pipeline.h);
  /// nullptr in serial mode.
  std::unique_ptr<CommitPipelines> commit_pipelines_;
  std::unique_ptr<FabricPlusPlusProcessor> fabricpp_;
  std::unique_ptr<FabricSharpProcessor> fabricsharp_;
  /// Allocated in Init() only when config_.admission.enabled(); shared
  /// by peers, orderers and clients, so declared before all of them to
  /// outlive them.
  std::unique_ptr<AdmissionStats> admission_stats_;
  std::vector<ChannelRuntime> channels_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<std::vector<Peer*>> peers_by_org_;
  std::unique_ptr<FaultInjector> fault_injector_;
  /// Routes commit verdicts back to the submitting client (resubmission
  /// mode only). Declared before clients_ so the clients that point at
  /// it are destroyed first.
  std::unordered_map<TxId, Client*> resubmit_registry_;
  std::vector<std::unique_ptr<Client>> clients_;
  /// Aggregated behaviour-class actors (population StartLoad only).
  std::vector<std::unique_ptr<ClientPopulation>> populations_;
  /// Keeps per-class workload generators alive for the actors above.
  std::vector<std::shared_ptr<WorkloadGenerator>> class_workloads_;
  std::unique_ptr<StreamingLedgerStats> ledger_stats_;

  /// Sized to num_channels() in Init(); stable addresses for the
  /// clients' ack sinks.
  std::vector<std::vector<TxId>> acked_txs_by_channel_;
  RunStats stats_;
  TxId tx_id_counter_ = 0;
  bool initialized_ = false;
};

}  // namespace fabricsim

#endif  // FABRICSIM_FABRIC_FABRIC_NETWORK_H_
