#ifndef FABRICSIM_FABRIC_NETWORK_CONFIG_H_
#define FABRICSIM_FABRIC_NETWORK_CONFIG_H_

#include <optional>
#include <string>

#include "src/admission/admission.h"
#include "src/common/sim_time.h"
#include "src/faults/fault_plan.h"
#include "src/sim/executor.h"
#include "src/sim/network.h"
#include "src/statedb/latency_profile.h"
#include "src/statedb/state_backend.h"

namespace fabricsim {

/// Client-side robustness knobs. Everything is off by default, which
/// reproduces the paper's fire-and-forget Caliper client exactly.
struct ClientRetryPolicy {
  /// Per-attempt endorsement-collection timeout. 0 disables timeouts
  /// and retries entirely (legacy behaviour): the client waits forever
  /// and a lost proposal strands the transaction.
  SimTime endorse_timeout = 0;
  /// Re-proposal rounds after the first before the client gives up.
  /// Each retry goes to the org's next round-robin peer and only
  /// targets the orgs that have not answered yet.
  int max_endorse_retries = 2;
  /// Exponential backoff: the timeout for attempt k (0-based) is
  /// endorse_timeout * backoff_multiplier^k. Deterministic — no jitter
  /// draw, so enabling retries in a run without timeouts changes
  /// nothing.
  double backoff_multiplier = 2.0;
  /// Opt-in resubmission of MVCC/phantom-failed transactions as fresh
  /// transactions after a backoff — the "retry amplification" loop:
  /// each resubmission re-reads hot keys and can conflict again.
  bool resubmit_on_mvcc = false;
  /// Resubmission budget per original transaction.
  int max_resubmits = 2;
  /// Delay between learning of the MVCC failure and re-endorsing.
  SimTime resubmit_backoff = 50 * kMillisecond;
  /// Ceiling on the exponential backoff. Without it, a long outage at
  /// high retry counts schedules virtual sleeps of hours (timeout *
  /// multiplier^k grows without bound) — the client looks wedged long
  /// after the fault has cleared. The default caps any wait at 30
  /// simulated seconds; the stock max_endorse_retries=2 never reaches
  /// it, so existing configurations are unaffected.
  SimTime max_backoff = 30 * kSecond;

  bool retries_enabled() const { return endorse_timeout > 0; }

  /// Deterministic capped exponential backoff for retry round
  /// `attempt` (0-based): min(endorse_timeout * multiplier^attempt,
  /// max_backoff), floored at one tick.
  SimTime BackoffForAttempt(int attempt) const {
    double scale = 1.0;
    for (int i = 0; i < attempt; ++i) {
      scale *= backoff_multiplier;
      // Stop early once the cap is unreachable; keeps the loop safe
      // from overflow at absurd attempt counts.
      if (max_backoff > 0 &&
          static_cast<double>(endorse_timeout) * scale >=
              static_cast<double>(max_backoff)) {
        return max_backoff;
      }
    }
    SimTime wait =
        static_cast<SimTime>(static_cast<double>(endorse_timeout) * scale);
    if (max_backoff > 0 && wait > max_backoff) wait = max_backoff;
    if (wait < 1) wait = 1;
    return wait;
  }
};

/// Which Fabric build runs the experiment (paper §4.5).
enum class FabricVariant {
  kFabric14,       ///< stock Fabric 1.4 (Kafka ordering)
  kFabricPlusPlus, ///< Fabric++: intra-block reordering + early abort
  kStreamchain,    ///< Streamchain: blockless streaming, RAM disk
  kFabricSharp,    ///< FabricSharp: cross-block serializability aborts
};

const char* FabricVariantToString(FabricVariant variant);

/// Cluster topology (paper §4.2). The paper's two setups:
///  * C1: 3 workers — 2 orgs x 2 peers, 3 orderers, 5 clients.
///  * C2: 32 workers — 8 orgs x 4 peers, 3 orderers, 25 clients.
struct ClusterConfig {
  int num_orgs = 2;
  int peers_per_org = 2;
  int num_orderers = 3;
  int num_clients = 5;

  int total_peers() const { return num_orgs * peers_per_org; }

  static ClusterConfig C1() { return ClusterConfig{2, 2, 3, 5}; }
  static ClusterConfig C2() { return ClusterConfig{8, 4, 3, 25}; }
};

/// Replicated-ordering knobs. `replicated == false` (the default)
/// keeps the legacy single-leader latency model (`ConsensusModel`
/// sampled per block), which is byte-identical to the pre-replication
/// tree — all paper figures run in that compat mode. `replicated ==
/// true` instantiates `cluster.num_orderers` Raft-style orderer
/// replicas as real DES actors: leader-based block-log replication, a
/// block delivers to peers only after a quorum of replicas acked it,
/// and a crashed leader is replaced through a randomized-timeout
/// election.
struct OrderingConfig {
  bool replicated = false;
  /// Election timeout drawn uniformly from [min, max) per arming, from
  /// each replica's own seeded RNG stream — deterministic for a given
  /// run seed, yet staggered across replicas like real Raft.
  SimTime election_timeout_min = 500 * kMillisecond;
  SimTime election_timeout_max = 1 * kSecond;
  /// Leader heartbeat (empty AppendEntries) period. Must be well below
  /// election_timeout_min or healthy followers keep starting elections.
  SimTime heartbeat_interval = 100 * kMillisecond;
  /// Client-side failover: how long a client waits for the ordering
  /// ack (sent at quorum commit) before re-broadcasting the envelope
  /// to the next replica. Must exceed the block timeout plus
  /// replication latency, or healthy txs get re-broadcast.
  SimTime client_ack_timeout = 4 * kSecond;
  /// Re-broadcast budget per envelope before the client gives up.
  int max_client_rebroadcasts = 10;
};

/// Service-time calibration for the non-database parts of the
/// pipeline. Values are chosen so that the simulated testbed saturates
/// around 200 tps, like the paper's clusters.
struct TimingConfig {
  /// Proposal unmarshalling + ACL checks per endorsement request.
  SimTime proposal_overhead = 300;
  /// ECDSA signature over the endorsement response.
  SimTime endorsement_sign_cost = 700;
  /// Client-side handling per endorsement response.
  SimTime client_collect_cost = 100;
  /// Ordering-service consensus latency per block (Kafka round trip).
  SimTime consensus_latency = 4000;
  /// Orderer ingress cost per transaction.
  SimTime orderer_per_tx_cost = 40;
  /// Block assembly + signing per block.
  SimTime orderer_per_block_cost = 6000;
  /// Egress cost per delivered block message per peer.
  SimTime orderer_per_msg_cost = 150;
  /// Fabric validates endorsement signatures with a worker pool; the
  /// summed per-transaction VSCC cost is divided by this factor.
  int vscc_parallelism = 16;
  /// Per-block ledger append (block file write + fsync) at each peer.
  /// Scaled down by the RAM-disk storage profile under Streamchain.
  SimTime ledger_append_cost = 40000;
  /// Fractional half-width of the per-task service-time jitter on each
  /// peer (validation and endorsement). Real peers never take exactly
  /// the same time to validate a block (database variance, GC, CPU
  /// contention), so replicas transiently diverge — the root cause of
  /// endorsement policy failures. 0 disables the jitter.
  double peer_service_jitter = 0.12;
  /// Size of each peer's shared validation/commit worker pool: how
  /// many *different channels'* blocks one peer process can validate
  /// concurrently. Each channel's own blocks always commit strictly
  /// in order, so with a single channel this knob is inert and the
  /// pipeline degenerates to the classic serial validate queue.
  int peer_commit_workers = 2;
};

/// Everything needed to instantiate one Fabric network.
struct FabricConfig {
  FabricVariant variant = FabricVariant::kFabric14;
  ClusterConfig cluster = ClusterConfig::C1();
  DatabaseType db_type = DatabaseType::kCouchDb;

  /// Data structure behind every per-channel world-state replica (and
  /// FabricSharp endorsement snapshot) of every peer. Orthogonal to
  /// db_type: the backend is how fast the simulator executes state
  /// ops, db_type is how much simulated time they cost. All backends
  /// produce bit-identical simulation results; the ordered-map default
  /// pins the paper figures, the hash/btree backends make million-key
  /// world state cheap (see src/statedb/state_backend.h).
  StateBackendType state_backend = StateBackendType::kOrderedMap;

  /// Number of channels (independent ledger shards) the network hosts.
  /// Every peer serves every channel with its own per-channel state
  /// replica and chain; the ordering service runs one block cutter
  /// (or one Raft group in replicated mode) per channel on the same
  /// orderer nodes. 1 reproduces the pre-channel pipeline exactly.
  int num_channels = 1;

  /// Endorsement policy text (PolicyParser grammar). When empty, the
  /// P0 preset (all orgs) is built for cluster.num_orgs.
  std::string policy_text;

  /// Block cutting parameters (paper §2, step 4).
  uint32_t block_size = 100;
  SimTime block_timeout = 2 * kSecond;
  uint64_t block_max_bytes = 100ull << 20;

  TimingConfig timing;
  NetworkConfig net;

  /// Replicated-ordering mode (off = legacy single-leader compat path).
  OrderingConfig ordering;

  /// Intra-run execution mode (serial reference vs threaded commit
  /// pipelines). A pure simulator-performance knob: every mode yields
  /// bitwise-identical simulation results, so it is excluded from
  /// Describe() and every artifact.
  ExecutionConfig execution;

  /// Pumba-style chaos injection: extra one-way delay applied to every
  /// peer of `delayed_org` (< 0 disables). Paper Fig. 16 uses
  /// 100 ± 10 ms on one organization. Kept as the legacy shorthand for
  /// a whole-run DelayWindow on one org; `faults` below is the general
  /// mechanism.
  int delayed_org = -1;
  SimTime injected_delay = 0;
  SimTime injected_delay_jitter = 0;

  /// Deterministic fault schedule (crashes, pauses, partitions, delay
  /// and loss windows). Empty by default; an empty plan leaves the run
  /// bitwise identical to a build without the fault subsystem.
  FaultPlan faults;

  /// Client endorsement timeout/retry + MVCC resubmission. All off by
  /// default (the paper's client behaviour).
  ClientRetryPolicy retry;

  /// Overload protection (src/admission): deadline propagation,
  /// bounded endorsement/ordering queues, client circuit breaker and
  /// retry budget. All off by default; a disabled config leaves every
  /// run bitwise identical to a build without the subsystem.
  AdmissionConfig admission;

  /// Whether clients submit read-only transactions for ordering (the
  /// paper's default flow does; its recommendation #4 is not to).
  bool submit_read_only = true;

  /// Per-transaction lifecycle tracing (src/obs). Off by default: the
  /// tracer is a pure observer, but recording spans costs memory and a
  /// little time, so runs that only need the aggregate FailureReport
  /// keep it disabled. Disabled runs are bitwise identical to builds
  /// without the tracing subsystem.
  bool tracing = false;

  /// Memory-bounded observability for long/large runs. With
  /// streaming_obs the tracer keeps only the in-flight transaction
  /// window: terminal events fold each trace into quantile sketches,
  /// failure counters and a reservoir of failure exemplars, then drop
  /// it. Implies a tracer even when `tracing` is false. Aggregate
  /// counts match dense tracing exactly; the full per-transaction
  /// export is replaced by the exemplar sample.
  bool streaming_obs = false;

  /// Fold the reference peer's commits into streaming per-channel
  /// aggregates (StreamingLedgerStats) instead of retaining the
  /// canonical BlockStore. Makes ledger memory O(channels) instead of
  /// O(transactions) — the enabler for hour-long million-user runs.
  /// Failure counts/throughput are exact; latency quantiles are
  /// sketch-approximate. Incompatible with fault plans: the post-run
  /// chain-integrity audit needs the retained ledger.
  bool streaming_ledger = false;

  /// Streamchain: ledger/world state on a RAM disk (paper §5.3.3).
  bool streamchain_ram_disk = true;

  /// Streamchain "virtual block boundary" (proposed by the Streamchain
  /// authors, highlighted as promising in paper §5.3.3): transactions
  /// stream one-by-one through ordering, but each peer group-commits
  /// every N streamed blocks, amortizing the per-block fixed costs
  /// (state-DB batch + ledger fsync). 1 disables grouping (the
  /// prototype's behaviour, which is why it needs the RAM disk).
  uint32_t streamchain_virtual_block_size = 1;

  /// FabricSharp: endorsers execute against block snapshots refreshed
  /// at this interval, introducing extra endorsement staleness
  /// (paper §5.4.1).
  SimTime fabricsharp_snapshot_interval = 300 * kMillisecond;

  /// Returns the database latency profile for db_type, scaled by the
  /// variant's storage profile (Streamchain RAM disk).
  DbLatencyProfile MakeDbProfile() const;
};

}  // namespace fabricsim

#endif  // FABRICSIM_FABRIC_NETWORK_CONFIG_H_
