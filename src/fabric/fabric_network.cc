#include "src/fabric/fabric_network.h"

#include <utility>

#include "src/ext/streamchain/streamchain.h"
#include "src/policy/policy_parser.h"
#include "src/policy/policy_presets.h"

namespace fabricsim {

FabricNetwork::FabricNetwork(FabricConfig config, Environment* env,
                             std::shared_ptr<Chaincode> chaincode,
                             std::shared_ptr<WorkloadGenerator> workload)
    : config_(std::move(config)),
      env_(env),
      chaincode_(std::move(chaincode)),
      workload_(std::move(workload)) {}

FabricNetwork::~FabricNetwork() = default;

Status FabricNetwork::Init() {
  if (initialized_) {
    return Status::FailedPrecondition("Init() called twice");
  }
  if (chaincode_ == nullptr || workload_ == nullptr) {
    return Status::InvalidArgument("chaincode and workload are required");
  }
  const ClusterConfig& cluster = config_.cluster;
  if (cluster.num_orgs < 1 || cluster.peers_per_org < 1 ||
      cluster.num_clients < 1) {
    return Status::InvalidArgument("cluster must have orgs, peers, clients");
  }

  // --- Lifecycle tracing ---------------------------------------------
  if (config_.tracing) {
    tracer_ = std::make_unique<Tracer>();
    env_->set_tracer(tracer_.get());
  }

  // --- Endorsement policy -------------------------------------------
  if (config_.policy_text.empty()) {
    policy_ = std::make_unique<EndorsementPolicy>(
        MakePolicy(PolicyPreset::kP0AllOrgs, cluster.num_orgs));
  } else {
    Result<EndorsementPolicy> parsed = PolicyParser::Parse(config_.policy_text);
    if (!parsed.ok()) return parsed.status();
    policy_ = std::make_unique<EndorsementPolicy>(std::move(parsed).value());
    for (OrgId org : policy_->MentionedOrgs()) {
      if (org < 0 || org >= cluster.num_orgs) {
        return Status::InvalidArgument("policy references unknown org " +
                                       std::to_string(org));
      }
    }
  }

  // --- Network + chaos injection -------------------------------------
  net_ = std::make_unique<Network>(config_.net, env_->rng().Fork(1000));

  // Node ids: orderer(s) first, then peers, then clients. Compat mode
  // has exactly one orderer node (id 0), keeping the legacy layout —
  // and the legacy byte-identical traffic — untouched; replicated mode
  // gives each of the N replicas its own node id 0..N-1.
  int num_orderer_nodes =
      config_.ordering.replicated
          ? (cluster.num_orderers < 1 ? 1 : cluster.num_orderers)
          : 1;
  NodeId next_node = static_cast<NodeId>(num_orderer_nodes);
  NodeId orderer_node = 0;

  // --- Variant processor ---------------------------------------------
  BlockProcessor* processor = nullptr;
  if (config_.variant == FabricVariant::kFabricPlusPlus) {
    fabricpp_ = std::make_unique<FabricPlusPlusProcessor>();
    processor = fabricpp_.get();
  } else if (config_.variant == FabricVariant::kFabricSharp) {
    fabricsharp_ = std::make_unique<FabricSharpProcessor>(*policy_);
    processor = fabricsharp_.get();
  }

  // --- Peers -----------------------------------------------------------
  DbLatencyProfile db_profile = config_.MakeDbProfile();
  if (StreamchainModel::UsesRamDisk(config_)) {
    // Ledger and world state live on a RAM disk (§5.3.3).
    config_.timing.ledger_append_cost = static_cast<SimTime>(
        static_cast<double>(config_.timing.ledger_append_cost) *
        StorageProfile::RamDisk().commit_cost_factor);
  }
  double validation_factor =
      config_.variant == FabricVariant::kStreamchain
          ? StreamchainModel::kValidationCostFactor
          : 1.0;
  validation_cache_ =
      std::make_unique<ValidationOutcomeCache>(cluster.total_peers());
  peers_by_org_.assign(static_cast<size_t>(cluster.num_orgs), {});
  for (int org = 0; org < cluster.num_orgs; ++org) {
    for (int i = 0; i < cluster.peers_per_org; ++i) {
      PeerId peer_id = static_cast<PeerId>(peers_.size());
      NodeId node = next_node++;
      Peer::Params params;
      params.id = peer_id;
      params.org = org;
      params.node = node;
      params.env = env_;
      params.net = net_.get();
      params.chaincode = chaincode_.get();
      params.policy = *policy_;
      params.db_profile = db_profile;
      params.timing = config_.timing;
      params.variant = config_.variant;
      params.validation_cost_factor = validation_factor;
      params.snapshot_interval = config_.fabricsharp_snapshot_interval;
      if (config_.variant == FabricVariant::kStreamchain) {
        params.virtual_block_group = config_.streamchain_virtual_block_size;
      }
      params.rng = env_->rng().Fork(2000 + static_cast<uint64_t>(peer_id));
      params.validation_cache = validation_cache_.get();
      if (peer_id == 0) {
        params.on_commit = [this](uint64_t number,
                                  const ValidationOutcome& outcome) {
          RecordCommit(number, outcome);
        };
      }
      auto peer = std::make_unique<Peer>(std::move(params));
      if (org == config_.delayed_org) {
        net_->InjectDelay(node, InjectedDelay{config_.injected_delay,
                                              config_.injected_delay_jitter});
      }
      peers_by_org_[static_cast<size_t>(org)].push_back(peer.get());
      peers_.push_back(std::move(peer));
    }
  }

  // --- Bootstrap world state -----------------------------------------
  std::vector<WriteItem> bootstrap = chaincode_->BootstrapState();
  for (auto& peer : peers_) {
    FABRICSIM_RETURN_NOT_OK(peer->Bootstrap(bootstrap));
  }

  // --- Ordering service -----------------------------------------------
  // Block dissemination follows Fabric's gossip layout: the ordering
  // service delivers to one leader peer per organization; the leader
  // forwards to its org members. A chaos-delayed org therefore pays
  // the injected delay twice on state dissemination (orderer->leader,
  // leader->member) but only once on the proposal path — its members
  // endorse on state that lags the healthy orgs.
  std::vector<Orderer::Params::PeerEndpoint> delivery_endpoints;
  for (const std::vector<Peer*>& org_peers : peers_by_org_) {
    if (org_peers.empty()) continue;
    Peer* leader = org_peers.front();
    std::vector<Peer*> members(org_peers.begin() + 1, org_peers.end());
    Network* net = net_.get();
    Environment* env = env_;
    delivery_endpoints.push_back(Orderer::Params::PeerEndpoint{
        leader->node(),
        [leader, members, net, env](std::shared_ptr<const Block> block) {
          leader->HandleBlock(block);
          for (Peer* member : members) {
            net->Send(*env, leader->node(), member->node(),
                      block->ByteSize(),
                      [member, block]() { member->HandleBlock(block); });
          }
        }});
  }
  auto on_block_cut = [this](std::shared_ptr<Block> block) {
    canonical_blocks_[block->number] = std::move(block);
  };
  auto on_early_abort = [this](const Transaction&, TxValidationCode code) {
    if (code == TxValidationCode::kAbortedNotSerializable) {
      ++stats_.early_aborts_not_serializable;
    } else if (code == TxValidationCode::kAbortedByReordering) {
      ++stats_.early_aborts_by_reordering;
    }
  };
  if (config_.ordering.replicated) {
    RaftGroup::Params gparams;
    gparams.env = env_;
    gparams.net = net_.get();
    gparams.num_replicas = num_orderer_nodes;
    gparams.node_base = 0;
    gparams.cutter =
        BlockCutter::Config{config_.block_size, config_.block_max_bytes};
    gparams.block_timeout = config_.block_timeout;
    gparams.timing = config_.timing;
    gparams.ordering = config_.ordering;
    gparams.streaming = config_.variant == FabricVariant::kStreamchain;
    gparams.processor = processor;
    for (int i = 0; i < num_orderer_nodes; ++i) {
      // Per-replica RNG streams; replica 0 reuses the compat orderer
      // stream id.
      gparams.replica_rngs.push_back(
          env_->rng().Fork(3000 + static_cast<uint64_t>(i)));
    }
    gparams.peers = delivery_endpoints;
    gparams.on_block_cut = on_block_cut;
    gparams.on_early_abort = on_early_abort;
    gparams.elections_sink = &stats_.orderer_elections;
    gparams.leader_changes_sink = &stats_.orderer_leader_changes;
    raft_ = std::make_unique<RaftGroup>(std::move(gparams));
  } else {
    Orderer::Params oparams;
    oparams.node = orderer_node;
    oparams.env = env_;
    oparams.net = net_.get();
    oparams.cutter =
        BlockCutter::Config{config_.block_size, config_.block_max_bytes};
    oparams.block_timeout = config_.block_timeout;
    oparams.timing = config_.timing;
    oparams.consensus = ConsensusModel(config_.cluster.num_orderers,
                                       config_.timing.consensus_latency);
    oparams.rng = env_->rng().Fork(3000);
    oparams.streaming = config_.variant == FabricVariant::kStreamchain;
    oparams.processor = processor;
    oparams.peers = std::move(delivery_endpoints);
    oparams.on_block_cut = on_block_cut;
    oparams.on_early_abort = on_early_abort;
    orderer_ = std::make_unique<Orderer>(std::move(oparams));
  }

  // --- Fault plan ------------------------------------------------------
  // Catch-up source for crash recovery: every peer can replay canonical
  // blocks it missed. Wired unconditionally — it is inert until a
  // restart happens.
  for (auto& peer : peers_) {
    peer->set_block_fetcher(
        [this](uint64_t number) { return FetchCanonicalBlock(number); });
  }
  if (!config_.faults.empty()) {
    if (config_.faults.NeedsFaultRng()) {
      // Forked only when some rule draws randomness: Fork() advances
      // the parent stream, so an unconditional fork would perturb the
      // client streams and break empty-plan bitwise identity.
      net_->set_fault_rng(env_->rng().Fork(5000));
    }
    FaultInjector::Actors actors;
    actors.env = env_;
    actors.net = net_.get();
    actors.orderer = orderer_.get();
    actors.raft = raft_.get();
    for (auto& peer : peers_) actors.peers.push_back(peer.get());
    actors.peers_by_org = peers_by_org_;
    fault_injector_ =
        std::make_unique<FaultInjector>(config_.faults, std::move(actors));
    FABRICSIM_RETURN_NOT_OK(fault_injector_->Install());
  }

  initialized_ = true;
  return Status::OK();
}

std::shared_ptr<const Block> FabricNetwork::FetchCanonicalBlock(
    uint64_t number) const {
  auto it = canonical_blocks_.find(number);
  if (it != canonical_blocks_.end()) return it->second;
  // Already reference-committed: serve a copy from the recorded ledger.
  const Block* block = ledger_.GetBlock(number);
  if (block == nullptr) return nullptr;
  return std::make_shared<const Block>(*block);
}

void FabricNetwork::StartLoad(double total_rate_tps, SimTime duration) {
  const ClusterConfig& cluster = config_.cluster;
  double per_client = total_rate_tps / cluster.num_clients;
  int num_orderer_nodes = raft_ != nullptr ? raft_->size() : 1;
  NodeId client_node_base =
      static_cast<NodeId>(num_orderer_nodes + static_cast<int>(peers_.size()));
  for (int i = 0; i < cluster.num_clients; ++i) {
    Client::Params params;
    params.id = i;
    params.node = client_node_base + i;
    params.env = env_;
    params.net = net_.get();
    params.workload = workload_.get();
    params.policy = policy_.get();
    params.peers_by_org = peers_by_org_;
    params.orderer = orderer_.get();
    params.orderer_node = 0;
    params.timing = config_.timing;
    params.rng = env_->rng().Fork(4000 + static_cast<uint64_t>(i));
    params.arrival_rate_tps = per_client;
    params.load_end_time = env_->now() + duration;
    params.submit_read_only = config_.submit_read_only;
    params.stats = &stats_;
    params.tx_id_counter = &tx_id_counter_;
    params.retry = config_.retry;
    if (config_.retry.resubmit_on_mvcc) {
      params.resubmit_registry = &resubmit_registry_;
    }
    if (raft_ != nullptr) {
      // Replicated ordering: the client broadcasts to replicas with
      // ack-timeout failover instead of the fire-and-forget submit.
      for (int r = 0; r < raft_->size(); ++r) {
        OrdererReplica* replica = raft_->replica(r);
        Client::Params::OrdererEndpoint endpoint;
        endpoint.node = replica->node();
        endpoint.submit = [replica](Transaction tx,
                                    std::function<void(TxId, bool)> ack) {
          replica->SubmitTransaction(std::move(tx), std::move(ack));
        };
        params.orderer_endpoints.push_back(std::move(endpoint));
      }
      params.orderer_ack_timeout = config_.ordering.client_ack_timeout;
      params.max_orderer_rebroadcasts = config_.ordering.max_client_rebroadcasts;
      params.acked_txs = &acked_txs_;
    }
    clients_.push_back(std::make_unique<Client>(std::move(params)));
    clients_.back()->Start();
  }
}

void FabricNetwork::RecordCommit(uint64_t block_number,
                                 const ValidationOutcome& outcome) {
  auto it = canonical_blocks_.find(block_number);
  if (it == canonical_blocks_.end()) return;
  Block block = *it->second;  // copy: the canonical block stays shared
  canonical_blocks_.erase(it);
  block.results = outcome.results;
  for (Transaction& tx : block.txs) {
    tx.committed_time = env_->now();
  }
  if (tracer_ != nullptr) {
    for (size_t i = 0; i < block.txs.size(); ++i) {
      tracer_->OnCommit(block.txs[i].id, block_number, i, block.results[i],
                        env_->now());
    }
  }
  if (!resubmit_registry_.empty()) {
    // Deliver each transaction's verdict to its client; MVCC failures
    // may come back as resubmissions.
    for (size_t i = 0; i < block.txs.size(); ++i) {
      auto rit = resubmit_registry_.find(block.txs[i].id);
      if (rit == resubmit_registry_.end()) continue;
      Client* client = rit->second;
      resubmit_registry_.erase(rit);
      client->OnCommittedResult(block.txs[i].id, block.results[i].code);
    }
  }
  ledger_.Append(std::move(block));
}

}  // namespace fabricsim
