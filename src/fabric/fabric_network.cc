#include "src/fabric/fabric_network.h"

#include <utility>

#include "src/ext/streamchain/streamchain.h"
#include "src/policy/policy_parser.h"
#include "src/policy/policy_presets.h"

namespace fabricsim {

FabricNetwork::FabricNetwork(FabricConfig config, Environment* env,
                             std::shared_ptr<Chaincode> chaincode,
                             std::shared_ptr<WorkloadGenerator> workload)
    : config_(std::move(config)),
      env_(env),
      chaincode_(std::move(chaincode)),
      workload_(std::move(workload)) {}

FabricNetwork::~FabricNetwork() = default;

Status FabricNetwork::InstallChaincode(ChannelId channel,
                                       std::shared_ptr<Chaincode> chaincode) {
  if (initialized_) {
    return Status::FailedPrecondition("InstallChaincode must precede Init()");
  }
  if (chaincode == nullptr) {
    return Status::InvalidArgument("chaincode is required");
  }
  if (channel < 0 || channel >= num_channels()) {
    return Status::InvalidArgument("channel out of range");
  }
  // Shadows the default only when it shares the default chaincode's
  // name (Fabric's per-channel instantiation of one chaincode);
  // differently-named installations coexist in the registry.
  return chaincode_registry_.Register(channel, std::move(chaincode));
}

Chaincode* FabricNetwork::chaincode_for(ChannelId channel) const {
  Chaincode* chaincode =
      chaincode_registry_.Get(channel, chaincode_->name());
  return chaincode != nullptr ? chaincode : chaincode_.get();
}

Status FabricNetwork::Init() {
  if (initialized_) {
    return Status::FailedPrecondition("Init() called twice");
  }
  if (chaincode_ == nullptr || workload_ == nullptr) {
    return Status::InvalidArgument("chaincode and workload are required");
  }
  if (config_.num_channels < 1) {
    return Status::InvalidArgument("num_channels must be >= 1");
  }
  const ClusterConfig& cluster = config_.cluster;
  if (cluster.num_orgs < 1 || cluster.peers_per_org < 1 ||
      cluster.num_clients < 1) {
    return Status::InvalidArgument("cluster must have orgs, peers, clients");
  }
  const int num_channels = this->num_channels();
  if (config_.streaming_ledger && !config_.faults.empty()) {
    // The chain-integrity audit that makes fault runs trustworthy
    // parses the retained ledger; streaming throws the blocks away.
    return Status::InvalidArgument(
        "streaming_ledger is incompatible with a fault plan");
  }
  if (config_.streaming_ledger) {
    ledger_stats_ = std::make_unique<StreamingLedgerStats>(num_channels);
  }

  // Every channel inherits the constructor's chaincode unless a
  // channel-specific installation shadows it.
  if (chaincode_registry_.Get(kDefaultChannel, chaincode_->name()) ==
      nullptr) {
    FABRICSIM_RETURN_NOT_OK(
        chaincode_registry_.Register(kDefaultChannel, chaincode_));
  }

  // --- Lifecycle tracing ---------------------------------------------
  if (config_.tracing || config_.streaming_obs) {
    TracerOptions trace_options;
    trace_options.streaming = config_.streaming_obs;
    tracer_ = std::make_unique<Tracer>(trace_options);
    tracer_->set_num_channels(num_channels);
    env_->set_tracer(tracer_.get());
  }

  // --- Endorsement policy -------------------------------------------
  if (config_.policy_text.empty()) {
    policy_ = std::make_unique<EndorsementPolicy>(
        MakePolicy(PolicyPreset::kP0AllOrgs, cluster.num_orgs));
  } else {
    Result<EndorsementPolicy> parsed = PolicyParser::Parse(config_.policy_text);
    if (!parsed.ok()) return parsed.status();
    policy_ = std::make_unique<EndorsementPolicy>(std::move(parsed).value());
    for (OrgId org : policy_->MentionedOrgs()) {
      if (org < 0 || org >= cluster.num_orgs) {
        return Status::InvalidArgument("policy references unknown org " +
                                       std::to_string(org));
      }
    }
  }

  // --- Network + chaos injection -------------------------------------
  net_ = std::make_unique<Network>(config_.net, env_->rng().Fork(1000));

  // Node ids: orderer(s) first, then peers, then clients. Compat mode
  // has exactly one orderer node (id 0), keeping the legacy layout —
  // and the legacy byte-identical traffic — untouched; replicated mode
  // gives each of the N replicas its own node id 0..N-1. Channels do
  // not add nodes: every channel's ordering pipeline is multiplexed
  // over the same orderer node ids, exactly as Fabric runs many
  // channels on one ordering service.
  int num_orderer_nodes =
      config_.ordering.replicated
          ? (cluster.num_orderers < 1 ? 1 : cluster.num_orderers)
          : 1;
  NodeId next_node = static_cast<NodeId>(num_orderer_nodes);
  NodeId orderer_node = 0;

  // --- Variant processor ---------------------------------------------
  BlockProcessor* processor = nullptr;
  if (config_.variant == FabricVariant::kFabricPlusPlus) {
    fabricpp_ = std::make_unique<FabricPlusPlusProcessor>();
    processor = fabricpp_.get();
  } else if (config_.variant == FabricVariant::kFabricSharp) {
    fabricsharp_ = std::make_unique<FabricSharpProcessor>(*policy_);
    processor = fabricsharp_.get();
  }

  // --- Overload protection --------------------------------------------
  // A single run-wide counter block; its absence (the default) is what
  // every actor checks to stay on the legacy pipeline.
  if (config_.admission.enabled()) {
    admission_stats_ = std::make_unique<AdmissionStats>();
  }

  // --- Peers -----------------------------------------------------------
  DbLatencyProfile db_profile = config_.MakeDbProfile();
  if (StreamchainModel::UsesRamDisk(config_)) {
    // Ledger and world state live on a RAM disk (§5.3.3).
    config_.timing.ledger_append_cost = static_cast<SimTime>(
        static_cast<double>(config_.timing.ledger_append_cost) *
        StorageProfile::RamDisk().commit_cost_factor);
  }
  double validation_factor =
      config_.variant == FabricVariant::kStreamchain
          ? StreamchainModel::kValidationCostFactor
          : 1.0;
  validation_cache_ =
      std::make_unique<ValidationOutcomeCache>(cluster.total_peers());
  if (env_->executor().mode() == ExecutionMode::kThreaded) {
    // Threaded execution: per-channel pipelines validate each cut
    // block on worker threads ahead of the virtual clock; the first
    // peer to need the outcome joins it through the cache's compute
    // hook. Pure wall-clock optimization — results stay bitwise
    // identical to serial mode.
    CommitPipelines::Params cp;
    cp.executor = &env_->executor();
    cp.num_channels = num_channels;
    cp.policy = *policy_;
    cp.state_backend = config_.state_backend;
    cp.lookahead_blocks = env_->executor().config().lookahead_blocks;
    commit_pipelines_ = std::make_unique<CommitPipelines>(std::move(cp));
  }
  std::vector<Chaincode*> channel_chaincodes;
  if (num_channels > 1) {
    channel_chaincodes.reserve(static_cast<size_t>(num_channels));
    for (int c = 0; c < num_channels; ++c) {
      channel_chaincodes.push_back(chaincode_for(c));
    }
  }
  peers_by_org_.assign(static_cast<size_t>(cluster.num_orgs), {});
  for (int org = 0; org < cluster.num_orgs; ++org) {
    for (int i = 0; i < cluster.peers_per_org; ++i) {
      PeerId peer_id = static_cast<PeerId>(peers_.size());
      NodeId node = next_node++;
      Peer::Params params;
      params.id = peer_id;
      params.org = org;
      params.node = node;
      params.env = env_;
      params.net = net_.get();
      params.num_channels = num_channels;
      params.chaincode = chaincode_.get();
      params.channel_chaincodes = channel_chaincodes;
      params.policy = *policy_;
      params.db_profile = db_profile;
      params.state_backend = config_.state_backend;
      params.timing = config_.timing;
      params.variant = config_.variant;
      params.validation_cost_factor = validation_factor;
      params.snapshot_interval = config_.fabricsharp_snapshot_interval;
      if (config_.variant == FabricVariant::kStreamchain) {
        params.virtual_block_group = config_.streamchain_virtual_block_size;
      }
      params.rng = env_->rng().Fork(2000 + static_cast<uint64_t>(peer_id));
      params.validation_cache = validation_cache_.get();
      params.commit_pipelines = commit_pipelines_.get();
      if (admission_stats_ != nullptr) {
        params.admission = &config_.admission;
        params.admission_stats = admission_stats_.get();
      }
      if (peer_id == 0) {
        params.on_commit = [this](ChannelId channel, uint64_t number,
                                  const ValidationOutcome& outcome) {
          RecordCommit(channel, number, outcome);
        };
      }
      auto peer = std::make_unique<Peer>(std::move(params));
      if (org == config_.delayed_org) {
        net_->InjectDelay(node, InjectedDelay{config_.injected_delay,
                                              config_.injected_delay_jitter});
      }
      peers_by_org_[static_cast<size_t>(org)].push_back(peer.get());
      peers_.push_back(std::move(peer));
    }
  }

  // --- Bootstrap world state -----------------------------------------
  for (int c = 0; c < num_channels; ++c) {
    std::vector<WriteItem> bootstrap = chaincode_for(c)->BootstrapState();
    for (auto& peer : peers_) {
      FABRICSIM_RETURN_NOT_OK(peer->Bootstrap(c, bootstrap));
    }
    if (commit_pipelines_ != nullptr) {
      // The shadow replicas must mirror the peers' bootstrap exactly.
      FABRICSIM_RETURN_NOT_OK(commit_pipelines_->Bootstrap(c, bootstrap));
    }
  }

  // --- Ordering service (one pipeline per channel) --------------------
  // Block dissemination follows Fabric's gossip layout: the ordering
  // service delivers to one leader peer per organization; the leader
  // forwards to its org members. A chaos-delayed org therefore pays
  // the injected delay twice on state dissemination (orderer->leader,
  // leader->member) but only once on the proposal path — its members
  // endorse on state that lags the healthy orgs. Every channel uses
  // the same gossip endpoints; the peer routes by block->channel.
  std::vector<Orderer::Params::PeerEndpoint> delivery_endpoints;
  for (const std::vector<Peer*>& org_peers : peers_by_org_) {
    if (org_peers.empty()) continue;
    Peer* leader = org_peers.front();
    std::vector<Peer*> members(org_peers.begin() + 1, org_peers.end());
    Network* net = net_.get();
    Environment* env = env_;
    delivery_endpoints.push_back(Orderer::Params::PeerEndpoint{
        leader->node(),
        [leader, members, net, env](std::shared_ptr<const Block> block) {
          leader->HandleBlock(block);
          for (Peer* member : members) {
            net->Send(*env, leader->node(), member->node(),
                      block->ByteSize(),
                      [member, block]() { member->HandleBlock(block); });
          }
        }});
  }
  auto on_block_cut = [this](std::shared_ptr<Block> block) {
    // Block content is final here in both ordering modes (the compat
    // cutter assembles it once; Raft fires this only after quorum
    // commit), so it is safe to hand to the speculative pipeline.
    if (commit_pipelines_ != nullptr) commit_pipelines_->OnBlockCut(block);
    ChannelRuntime& runtime = channels_[static_cast<size_t>(block->channel)];
    runtime.canonical_blocks[block->number] = std::move(block);
  };
  auto on_early_abort = [this](const Transaction&, TxValidationCode code) {
    if (code == TxValidationCode::kAbortedNotSerializable) {
      ++stats_.early_aborts_not_serializable;
    } else if (code == TxValidationCode::kAbortedByReordering) {
      ++stats_.early_aborts_by_reordering;
    }
  };
  // RNG stream layout: channel 0 keeps the legacy stream ids (3000
  // compat / 3000+i replicated), forked at the same point in Init as
  // before channels existed, so a single-channel network draws the
  // exact legacy sequence. Additional channels fork from a disjoint id
  // range afterwards.
  channels_.resize(static_cast<size_t>(num_channels));
  for (int c = 0; c < num_channels; ++c) {
    ChannelRuntime& runtime = channels_[static_cast<size_t>(c)];
    if (config_.ordering.replicated) {
      RaftGroup::Params gparams;
      gparams.env = env_;
      gparams.net = net_.get();
      gparams.channel = c;
      gparams.num_replicas = num_orderer_nodes;
      gparams.node_base = 0;
      gparams.cutter =
          BlockCutter::Config{config_.block_size, config_.block_max_bytes};
      gparams.block_timeout = config_.block_timeout;
      gparams.timing = config_.timing;
      gparams.ordering = config_.ordering;
      gparams.streaming = config_.variant == FabricVariant::kStreamchain;
      gparams.processor = processor;
      for (int i = 0; i < num_orderer_nodes; ++i) {
        uint64_t stream =
            c == 0 ? 3000 + static_cast<uint64_t>(i)
                   : 30000 + static_cast<uint64_t>(c) * 64 +
                         static_cast<uint64_t>(i);
        gparams.replica_rngs.push_back(env_->rng().Fork(stream));
      }
      gparams.peers = delivery_endpoints;
      gparams.on_block_cut = on_block_cut;
      gparams.on_early_abort = on_early_abort;
      gparams.elections_sink = &stats_.orderer_elections;
      gparams.leader_changes_sink = &stats_.orderer_leader_changes;
      runtime.raft = std::make_unique<RaftGroup>(std::move(gparams));
    } else {
      Orderer::Params oparams;
      oparams.node = orderer_node;
      oparams.channel = c;
      oparams.env = env_;
      oparams.net = net_.get();
      oparams.cutter =
          BlockCutter::Config{config_.block_size, config_.block_max_bytes};
      oparams.block_timeout = config_.block_timeout;
      oparams.timing = config_.timing;
      oparams.consensus = ConsensusModel(config_.cluster.num_orderers,
                                         config_.timing.consensus_latency);
      oparams.rng = env_->rng().Fork(
          c == 0 ? 3000 : 30000 + static_cast<uint64_t>(c) * 64);
      oparams.streaming = config_.variant == FabricVariant::kStreamchain;
      oparams.processor = processor;
      oparams.peers = delivery_endpoints;
      oparams.on_block_cut = on_block_cut;
      oparams.on_early_abort = on_early_abort;
      if (admission_stats_ != nullptr) {
        oparams.admission = &config_.admission;
        oparams.admission_stats = admission_stats_.get();
      }
      runtime.orderer = std::make_unique<Orderer>(std::move(oparams));
    }
  }
  acked_txs_by_channel_.assign(static_cast<size_t>(num_channels), {});

  // --- Fault plan ------------------------------------------------------
  // Catch-up source for crash recovery: every peer can replay canonical
  // blocks it missed, on every channel. Wired unconditionally — it is
  // inert until a restart happens.
  for (auto& peer : peers_) {
    peer->set_block_fetcher([this](ChannelId channel, uint64_t number) {
      return FetchCanonicalBlock(channel, number);
    });
  }
  if (!config_.faults.empty()) {
    if (config_.faults.NeedsFaultRng()) {
      // Forked only when some rule draws randomness: Fork() advances
      // the parent stream, so an unconditional fork would perturb the
      // client streams and break empty-plan bitwise identity.
      net_->set_fault_rng(env_->rng().Fork(5000));
    }
    FaultInjector::Actors actors;
    actors.env = env_;
    actors.net = net_.get();
    actors.orderer = channels_[0].orderer.get();
    actors.raft = channels_[0].raft.get();
    for (ChannelRuntime& runtime : channels_) {
      if (runtime.orderer != nullptr) {
        actors.orderers.push_back(runtime.orderer.get());
      }
      if (runtime.raft != nullptr) {
        actors.rafts.push_back(runtime.raft.get());
      }
    }
    for (auto& peer : peers_) actors.peers.push_back(peer.get());
    actors.peers_by_org = peers_by_org_;
    fault_injector_ =
        std::make_unique<FaultInjector>(config_.faults, std::move(actors));
    FABRICSIM_RETURN_NOT_OK(fault_injector_->Install());
  }

  initialized_ = true;
  return Status::OK();
}

std::shared_ptr<const Block> FabricNetwork::FetchCanonicalBlock(
    ChannelId channel, uint64_t number) const {
  const ChannelRuntime& runtime = channels_[static_cast<size_t>(channel)];
  auto it = runtime.canonical_blocks.find(number);
  if (it != runtime.canonical_blocks.end()) return it->second;
  // Already reference-committed: serve a copy from the recorded ledger.
  const Block* block = runtime.ledger.GetBlock(number);
  if (block == nullptr) return nullptr;
  return std::make_shared<const Block>(*block);
}

void FabricNetwork::StartLoad(double total_rate_tps, SimTime duration) {
  PopulationConfig population = PopulationConfig::SingleClass(
      static_cast<uint64_t>(config_.cluster.num_clients), total_rate_tps);
  // The legacy entry point always expands to per-client actors: a
  // threshold above the population size forces the expansion path,
  // whose per-user arithmetic (rate spread, node ids, RNG streams) is
  // byte-identical to the historical per-client loop.
  population.aggregation_threshold =
      static_cast<uint64_t>(config_.cluster.num_clients) + 1;
  Status st = StartLoad(population, duration);
  (void)st;  // cluster.num_clients >= 1 is enforced by Init()
}

Status FabricNetwork::StartLoad(
    const PopulationConfig& population, SimTime duration,
    std::vector<std::shared_ptr<WorkloadGenerator>> class_workloads) {
  if (!initialized_) {
    return Status::FailedPrecondition("Init() must precede StartLoad()");
  }
  FABRICSIM_RETURN_NOT_OK(population.Validate());
  if (!class_workloads.empty() &&
      class_workloads.size() != population.classes.size()) {
    return Status::InvalidArgument(
        "class_workloads must be empty or one entry per behaviour class");
  }
  class_workloads_ = std::move(class_workloads);
  if (ledger_stats_ != nullptr) {
    ledger_stats_->set_window_end(env_->now() + duration);
  }

  const int num_channels = this->num_channels();
  int num_orderer_nodes =
      channels_[0].raft != nullptr ? channels_[0].raft->size() : 1;
  NodeId client_node_base =
      static_cast<NodeId>(num_orderer_nodes + static_cast<int>(peers_.size()));

  // Shared parameter assembly for both per-user clients and aggregated
  // population actors. `actor_index` numbers every created actor in
  // order (node ids stay dense); when every class expands it equals
  // the legacy client index, so ids, node ids and affinity draws match
  // the historical loop exactly.
  auto make_params = [&](int actor_index, Rng rng, double rate_tps,
                         WorkloadGenerator* workload,
                         const ChannelAffinityConfig& affinity_config,
                         const ClientRetryPolicy& retry) {
    Client::Params params;
    params.id = actor_index;
    params.node = client_node_base + actor_index;
    params.env = env_;
    params.net = net_.get();
    params.workload = workload;
    params.policy = policy_.get();
    params.peers_by_org = peers_by_org_;
    params.orderer = channels_[0].orderer.get();
    params.orderer_node = 0;
    params.timing = config_.timing;
    params.rng = std::move(rng);
    params.arrival_rate_tps = rate_tps;
    params.load_end_time = env_->now() + duration;
    params.submit_read_only = config_.submit_read_only;
    params.stats = &stats_;
    params.tx_id_counter = &tx_id_counter_;
    params.retry = retry;
    if (num_channels > 1) {
      params.affinity =
          ChannelAffinity(affinity_config, num_channels, actor_index);
      if (channels_[0].raft == nullptr) {
        for (ChannelRuntime& runtime : channels_) {
          params.channel_orderers.push_back(runtime.orderer.get());
        }
      }
    }
    if (retry.resubmit_on_mvcc) {
      params.resubmit_registry = &resubmit_registry_;
    }
    if (admission_stats_ != nullptr) {
      params.admission = &config_.admission;
      params.admission_stats = admission_stats_.get();
    }
    if (channels_[0].raft != nullptr) {
      // Replicated ordering: the client broadcasts to replicas with
      // ack-timeout failover instead of the fire-and-forget submit.
      auto endpoints_for = [](RaftGroup* raft) {
        std::vector<Client::Params::OrdererEndpoint> endpoints;
        for (int r = 0; r < raft->size(); ++r) {
          OrdererReplica* replica = raft->replica(r);
          Client::Params::OrdererEndpoint endpoint;
          endpoint.node = replica->node();
          endpoint.submit = [replica](Transaction tx,
                                      std::function<void(TxId, bool)> ack) {
            replica->SubmitTransaction(std::move(tx), std::move(ack));
          };
          endpoints.push_back(std::move(endpoint));
        }
        return endpoints;
      };
      if (num_channels > 1) {
        for (ChannelRuntime& runtime : channels_) {
          params.channel_orderer_endpoints.push_back(
              endpoints_for(runtime.raft.get()));
        }
        params.acked_txs_by_channel = &acked_txs_by_channel_;
      } else {
        params.orderer_endpoints = endpoints_for(channels_[0].raft.get());
        params.acked_txs = &acked_txs_by_channel_[0];
      }
      params.orderer_ack_timeout = config_.ordering.client_ack_timeout;
      params.max_orderer_rebroadcasts = config_.ordering.max_client_rebroadcasts;
    }
    return params;
  };

  int actor_index = 0;
  // Expanded users consume the legacy per-client RNG id space
  // (4000 + index, in creation order); aggregated classes draw from
  // the disjoint 4700/4800 ranges so mixing both never collides.
  uint64_t expanded_index = 0;
  for (size_t ci = 0; ci < population.classes.size(); ++ci) {
    const BehaviourClass& bc = population.classes[ci];
    WorkloadGenerator* workload =
        (ci < class_workloads_.size() && class_workloads_[ci] != nullptr)
            ? class_workloads_[ci].get()
            : workload_.get();
    const ChannelAffinityConfig& affinity_config =
        bc.affinity.has_value() ? *bc.affinity : channel_affinity_;
    ClientRetryPolicy retry = bc.retry.has_value() ? *bc.retry : config_.retry;
    // Surged classes always aggregate: the surge schedule lives in the
    // class's ArrivalProcess, which per-user actors do not have.
    if (bc.num_users < population.aggregation_threshold &&
        bc.surges.empty()) {
      for (uint64_t u = 0; u < bc.num_users; ++u) {
        Client::Params params =
            make_params(actor_index, env_->rng().Fork(4000 + expanded_index),
                        bc.per_user_tps, workload, affinity_config, retry);
        clients_.push_back(std::make_unique<Client>(std::move(params)));
        clients_.back()->Start();
        ++actor_index;
        ++expanded_index;
      }
    } else {
      // One actor stands in for the whole class: a superposed-Poisson
      // (optionally Markov-modulated) arrival process driving one
      // embedded Client through the full endorse/order/retry
      // machinery. The client RNG and the arrival RNG are separate
      // streams so arrival modulation never perturbs payload draws.
      Client::Params params =
          make_params(actor_index, env_->rng().Fork(4700 + ci),
                      bc.aggregate_rate_tps(), workload, affinity_config,
                      retry);
      ArrivalProcess arrivals(bc.aggregate_rate_tps(), bc.mmpp,
                              env_->rng().Fork(4800 + ci), bc.surges);
      populations_.push_back(std::make_unique<ClientPopulation>(
          std::move(params), std::move(arrivals)));
      populations_.back()->Start();
      ++actor_index;
    }
  }
  return Status::OK();
}

void FabricNetwork::RecordCommit(ChannelId channel, uint64_t block_number,
                                 const ValidationOutcome& outcome) {
  ChannelRuntime& runtime = channels_[static_cast<size_t>(channel)];
  auto it = runtime.canonical_blocks.find(block_number);
  if (it == runtime.canonical_blocks.end()) return;
  Block block = *it->second;  // copy: the canonical block stays shared
  runtime.canonical_blocks.erase(it);
  block.results = outcome.results;
  for (Transaction& tx : block.txs) {
    tx.committed_time = env_->now();
  }
  if (tracer_ != nullptr) {
    for (size_t i = 0; i < block.txs.size(); ++i) {
      tracer_->OnCommit(block.txs[i].id, block_number, i, block.results[i],
                        env_->now());
    }
  }
  if (!resubmit_registry_.empty()) {
    // Deliver each transaction's verdict to its client; MVCC failures
    // may come back as resubmissions.
    for (size_t i = 0; i < block.txs.size(); ++i) {
      auto rit = resubmit_registry_.find(block.txs[i].id);
      if (rit == resubmit_registry_.end()) continue;
      Client* client = rit->second;
      resubmit_registry_.erase(rit);
      client->OnCommittedResult(block.txs[i].id, block.results[i].code);
    }
  }
  if (ledger_stats_ != nullptr) {
    // Streaming mode: fold the block into the bounded aggregates and
    // drop it — the BlockStore stays empty by design.
    ledger_stats_->OnBlockCommitted(block);
    return;
  }
  runtime.ledger.Append(std::move(block));
}

}  // namespace fabricsim
