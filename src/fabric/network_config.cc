#include "src/fabric/network_config.h"

namespace fabricsim {

const char* FabricVariantToString(FabricVariant variant) {
  switch (variant) {
    case FabricVariant::kFabric14:
      return "Fabric 1.4";
    case FabricVariant::kFabricPlusPlus:
      return "Fabric++";
    case FabricVariant::kStreamchain:
      return "Streamchain";
    case FabricVariant::kFabricSharp:
      return "FabricSharp";
  }
  return "unknown";
}

DbLatencyProfile FabricConfig::MakeDbProfile() const {
  DbLatencyProfile profile = db_type == DatabaseType::kLevelDb
                                 ? DbLatencyProfile::LevelDb()
                                 : DbLatencyProfile::CouchDb();
  if (variant == FabricVariant::kStreamchain && streamchain_ram_disk) {
    StorageProfile storage = StorageProfile::RamDisk();
    profile.commit_base = static_cast<SimTime>(
        static_cast<double>(profile.commit_base) * storage.commit_cost_factor);
    profile.commit_per_write = static_cast<SimTime>(
        static_cast<double>(profile.commit_per_write) *
        storage.commit_cost_factor);
  }
  return profile;
}

}  // namespace fabricsim
