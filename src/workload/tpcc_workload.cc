#include "src/workload/tpcc_workload.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/workload/key_distribution.h"

namespace fabricsim {
namespace {

using Entry = FunctionMixWorkload::Entry;

/// Optimistic per-district view of d_next_o_id (the generator's
/// counterpart of ScmState). The chaincode derives the real id from
/// committed state; this guess only steers OrderStatus at plausibly
/// recent orders.
struct TpccState {
  explicit TpccState(int districts) : next_o_guess(districts, 0) {}
  std::vector<long long> next_o_guess;  // (w * D + d) -> guessed next o_id
};

}  // namespace

std::unique_ptr<WorkloadGenerator> MakeTpccWorkload(
    const WorkloadConfig& config) {
  const TpccConfig& t = config.tpcc;
  int warehouses = std::max(1, t.warehouses);
  int districts = std::max(1, t.districts_per_warehouse);
  int customers = std::max(1, t.customers_per_district);
  int items = std::max(1, t.items);

  auto state = std::make_shared<TpccState>(warehouses * districts);
  // One sampler over all W x D districts: the terminal chooses its
  // district, then everything in the transaction stays district-local
  // (the TPC-C home-warehouse rule, minus remote payments).
  auto dists = std::make_shared<KeyDistribution>(
      static_cast<uint64_t>(warehouses * districts), config.zipf_skew);
  auto custs = std::make_shared<KeyDistribution>(
      static_cast<uint64_t>(customers), config.zipf_skew);
  auto item_dist = std::make_shared<KeyDistribution>(
      static_cast<uint64_t>(items), config.zipf_skew);
  double invalid_rate = t.invalid_item_rate;

  auto pick_district = [dists, districts](Rng& rng, int* w, int* d) {
    int wd = static_cast<int>(dists->Sample(rng));
    *w = wd / districts;
    *d = wd % districts;
  };

  std::vector<Entry> entries;
  entries.push_back(
      {45.0, [state, pick_district, custs, item_dist, items, invalid_rate,
              districts](Rng& rng) {
         int w, d;
         pick_district(rng, &w, &d);
         int c = static_cast<int>(custs->Sample(rng));
         int n = 5 + static_cast<int>(rng.UniformU64(11));  // 5..15 lines
         bool invalid = rng.Bernoulli(invalid_rate);
         std::vector<std::string> args = {std::to_string(w), std::to_string(d),
                                          std::to_string(c),
                                          std::to_string(n)};
         for (int l = 0; l < n; ++l) {
           // TPC-C §2.4.1.5: the invalid transaction swaps its *last*
           // item for an unused id; `items` itself is never bootstrapped.
           int item = invalid && l == n - 1
                          ? items
                          : static_cast<int>(item_dist->Sample(rng));
           args.push_back(std::to_string(item));
           args.push_back(std::to_string(1 + rng.UniformU64(10)));
         }
         if (!invalid) ++state->next_o_guess[w * districts + d];
         return Invocation{"NewOrder", std::move(args)};
       }});
  entries.push_back({43.0, [pick_district, custs](Rng& rng) {
                       int w, d;
                       pick_district(rng, &w, &d);
                       return Invocation{
                           "Payment",
                           {std::to_string(w), std::to_string(d),
                            std::to_string(custs->Sample(rng)),
                            std::to_string(100 + rng.UniformU64(4900))}};
                     }});
  entries.push_back({4.0, [pick_district](Rng& rng) {
                       int w, d;
                       pick_district(rng, &w, &d);
                       return Invocation{"Delivery",
                                         {std::to_string(w), std::to_string(d),
                                          std::to_string(rng.UniformU64(10))}};
                     }});
  entries.push_back(
      {4.0, [state, pick_district, custs, districts](Rng& rng) {
        int w, d;
        pick_district(rng, &w, &d);
        long long guess = state->next_o_guess[w * districts + d];
        long long o =
            guess > 0
                ? guess - 1 -
                      static_cast<long long>(rng.UniformU64(
                          static_cast<uint64_t>(std::min(guess, 10LL))))
                : 0;
        return Invocation{"OrderStatus",
                          {std::to_string(w), std::to_string(d),
                           std::to_string(custs->Sample(rng)),
                           std::to_string(o)}};
      }});
  entries.push_back({4.0, [pick_district](Rng& rng) {
                       int w, d;
                       pick_district(rng, &w, &d);
                       // Threshold uniform in 10..20 (TPC-C §2.8.1.2).
                       return Invocation{
                           "StockLevel",
                           {std::to_string(w), std::to_string(d),
                            std::to_string(10 + rng.UniformU64(11))}};
                     }});
  return std::make_unique<FunctionMixWorkload>("tpcc", std::move(entries));
}

std::unique_ptr<WorkloadGenerator> MakeAssetTransferWorkload(
    const WorkloadConfig& config) {
  const AssetTransferConfig& a = config.asset;
  int owners = std::max(1, a.owners);
  auto assets = std::make_shared<KeyDistribution>(
      static_cast<uint64_t>(std::max(1, a.assets)), config.zipf_skew);
  // Fresh ids for createAsset, above the bootstrapped range.
  auto create_seq = std::make_shared<int>(a.assets);

  double w_write = 1.0;
  double w_read = 1.0;
  if (config.mix == WorkloadMix::kReadHeavy) {
    w_write = 0.4;
    w_read = 2.0;
  }

  std::vector<Entry> entries;
  entries.push_back({45.0 * w_write, [assets, owners](Rng& rng) {
                       return Invocation{
                           "transferAsset",
                           {std::to_string(assets->Sample(rng)),
                            std::to_string(rng.UniformU64(
                                static_cast<uint64_t>(owners)))}};
                     }});
  entries.push_back({25.0 * w_read, [owners](Rng& rng) {
                       return Invocation{
                           "queryByOwner",
                           {std::to_string(rng.UniformU64(
                               static_cast<uint64_t>(owners)))}};
                     }});
  entries.push_back({20.0 * w_read, [assets](Rng& rng) {
                       return Invocation{
                           "readAsset",
                           {std::to_string(assets->Sample(rng))}};
                     }});
  entries.push_back(
      {10.0 * w_write, [create_seq, owners](Rng& rng) {
        int asset = (*create_seq)++;
        return Invocation{
            "createAsset",
            {std::to_string(asset),
             std::to_string(rng.UniformU64(static_cast<uint64_t>(owners))),
             std::to_string(100 + rng.UniformU64(900))}};
      }});
  return std::make_unique<FunctionMixWorkload>("asset", std::move(entries));
}

}  // namespace fabricsim
