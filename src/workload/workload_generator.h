#ifndef FABRICSIM_WORKLOAD_WORKLOAD_GENERATOR_H_
#define FABRICSIM_WORKLOAD_WORKLOAD_GENERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/chaincode/chaincode.h"
#include "src/common/rng.h"

namespace fabricsim {

/// Produces the stream of chaincode invocations the clients submit.
/// One generator instance is shared by all clients of an experiment so
/// that stateful streams (fresh insert keys, unique delete keys, ASN
/// sequence numbers) stay globally unique.
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// Next invocation to submit.
  virtual Invocation Next(Rng& rng) = 0;

  /// The chaincode this workload targets.
  virtual std::string chaincode() const = 0;
};

/// Generic weighted function mix: picks an entry proportional to its
/// weight and delegates argument construction to the entry's factory.
class FunctionMixWorkload : public WorkloadGenerator {
 public:
  struct Entry {
    double weight;
    std::function<Invocation(Rng&)> make;
  };

  FunctionMixWorkload(std::string chaincode, std::vector<Entry> entries);

  Invocation Next(Rng& rng) override;
  std::string chaincode() const override { return chaincode_; }

 private:
  std::string chaincode_;
  std::vector<Entry> entries_;
  double total_weight_ = 0.0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_WORKLOAD_WORKLOAD_GENERATOR_H_
