#ifndef FABRICSIM_WORKLOAD_YCSB_H_
#define FABRICSIM_WORKLOAD_YCSB_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/statedb/state_database.h"

namespace fabricsim {

/// The six standard YCSB core workloads (Cooper et al., SoCC'10), the
/// op mixes Halo benchmarks its hash indexes with.
enum class YcsbWorkload {
  kA,  ///< update heavy: 50% read / 50% update
  kB,  ///< read mostly:  95% read / 5% update
  kC,  ///< read only:   100% read
  kD,  ///< read latest:  95% read (skewed to recent inserts) / 5% insert
  kE,  ///< short ranges: 95% scan / 5% insert
  kF,  ///< read-modify-write: 50% read / 50% RMW
};

const char* YcsbWorkloadToString(YcsbWorkload workload);
std::optional<YcsbWorkload> YcsbWorkloadFromString(const std::string& name);

/// Configuration of one YCSB load/run pair.
struct YcsbConfig {
  YcsbWorkload workload = YcsbWorkload::kA;
  /// Keys inserted by the load phase.
  uint64_t record_count = 100000;
  /// Operations executed by the run phase.
  uint64_t operation_count = 100000;
  /// Payload bytes per value.
  size_t value_size = 100;
  /// Zipfian skew of key popularity; 0 = uniform. YCSB's default is
  /// 0.99 (avoid exactly 1.0: the generator's theta==1 path falls back
  /// to an O(n) inverse-CDF walk per sample).
  double zipf_theta = 0.99;
  /// Scan length for workload E, drawn uniformly from [1, max].
  int max_scan_length = 100;
  uint64_t seed = 42;
};

/// Aggregate outcome of a run phase. `checksum` folds every observed
/// version and scan length, so (a) the compiler cannot discard the
/// reads and (b) two backends driven identically must produce equal
/// checksums — a cheap differential check at benchmark scale.
struct YcsbCounts {
  uint64_t reads = 0;
  uint64_t read_hits = 0;
  uint64_t updates = 0;
  uint64_t inserts = 0;
  uint64_t scans = 0;
  uint64_t scanned_entries = 0;
  uint64_t read_modify_writes = 0;
  uint64_t checksum = 0;
};

/// Deterministic YCSB-style workload driver against a StateDatabase:
/// Load() populates record_count keys, Run() executes operation_count
/// ops of the configured mix. Same config + seed => identical op
/// sequence against any backend.
class YcsbDriver {
 public:
  explicit YcsbDriver(YcsbConfig config);

  /// Load phase: inserts keys 0..record_count-1 with generated values
  /// at versions {0, i % 2^32}-style monotone versions.
  Status Load(StateDatabase& db);

  /// Run phase: executes the op mix. Call after Load(); inserts during
  /// D/E extend the key space beyond record_count.
  YcsbCounts Run(StateDatabase& db);

  /// Zero-padded key for index i ("user00000000001234"): lexicographic
  /// order equals numeric order, so workload E's scans are contiguous.
  static std::string Key(uint64_t index);

  /// Deterministic value payload of config.value_size bytes.
  std::string Value(uint64_t tag) const;

  const YcsbConfig& config() const { return config_; }

 private:
  YcsbConfig config_;
  uint64_t inserted_ = 0;  // total keys ever inserted (load + run)
};

}  // namespace fabricsim

#endif  // FABRICSIM_WORKLOAD_YCSB_H_
