#ifndef FABRICSIM_WORKLOAD_TPCC_WORKLOAD_H_
#define FABRICSIM_WORKLOAD_TPCC_WORKLOAD_H_

#include <memory>

#include "src/workload/workload_generator.h"
#include "src/workload/workload_spec.h"

namespace fabricsim {

/// TPC-C transaction mix against the tpcc chaincode, after Klenik &
/// Kocsis: NewOrder 45%, Payment 43%, Delivery / OrderStatus /
/// StockLevel 4% each. TPC-C prescribes its own mix, so WorkloadMix is
/// ignored; `config.zipf_skew` shapes district/customer/item
/// popularity (0 = the spec's uniform terminals).
///
/// The generator keeps an optimistic per-district order counter
/// (mirroring ScmState): NewOrder bumps it, OrderStatus aims at a
/// recent order id derived from it. Aborted transactions make the
/// guess stale, which the chaincode tolerates — footprints stay
/// stable, ids just lag.
std::unique_ptr<WorkloadGenerator> MakeTpccWorkload(
    const WorkloadConfig& config);

/// Composite-key asset-transfer mix (scenario packs): transferAsset
/// 45%, queryByOwner 25%, readAsset 20%, createAsset 10%. Transfers
/// move OWNED index entries between owner subtrees while queryByOwner
/// phantom-checks one subtree — the deliberate phantom-abort
/// generator. kReadHeavy shifts weight onto the two read functions.
std::unique_ptr<WorkloadGenerator> MakeAssetTransferWorkload(
    const WorkloadConfig& config);

}  // namespace fabricsim

#endif  // FABRICSIM_WORKLOAD_TPCC_WORKLOAD_H_
