#ifndef FABRICSIM_WORKLOAD_PAPER_WORKLOADS_H_
#define FABRICSIM_WORKLOAD_PAPER_WORKLOADS_H_

#include <memory>

#include "src/common/status.h"
#include "src/workload/workload_generator.h"
#include "src/workload/workload_spec.h"

namespace fabricsim {

/// Builds the workload generator for a WorkloadConfig, reproducing the
/// paper's workloads:
///  * EHR / DV / SCM / DRM: uniform (or read-shifted) mixes over the
///    Table 2 functions, keys drawn with the configured Zipfian skew
///    over the intentionally small bootstrapped key spaces.
///  * genChain: the five synthetic transaction types with x-heavy
///    mixes (80% / 5%·4) and range sizes {2,4,8}.
///
/// `rich_queries_supported` must reflect the configured database type;
/// on LevelDB the rich-query functions (queryStock, calcRevenue) are
/// excluded from the mix, since the shim rejects them.
Result<std::unique_ptr<WorkloadGenerator>> MakeWorkload(
    const WorkloadConfig& config, bool rich_queries_supported);

}  // namespace fabricsim

#endif  // FABRICSIM_WORKLOAD_PAPER_WORKLOADS_H_
