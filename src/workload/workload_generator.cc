#include "src/workload/workload_generator.h"

namespace fabricsim {

FunctionMixWorkload::FunctionMixWorkload(std::string chaincode,
                                         std::vector<Entry> entries)
    : chaincode_(std::move(chaincode)), entries_(std::move(entries)) {
  for (const Entry& e : entries_) total_weight_ += e.weight;
}

Invocation FunctionMixWorkload::Next(Rng& rng) {
  double pick = rng.UniformDouble() * total_weight_;
  double cum = 0.0;
  for (const Entry& e : entries_) {
    cum += e.weight;
    if (pick < cum) return e.make(rng);
  }
  return entries_.back().make(rng);
}

}  // namespace fabricsim
