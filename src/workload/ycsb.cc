#include "src/workload/ycsb.h"

#include <cstdio>

namespace fabricsim {
namespace {

/// splitmix64 finalizer — cheap deterministic byte source for values.
uint64_t Mix(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

uint64_t FoldChecksum(uint64_t checksum, uint64_t x) {
  return (checksum ^ x) * 1099511628211ull;
}

uint64_t FoldVersion(uint64_t checksum, const std::optional<VersionedValue>& vv) {
  if (!vv.has_value()) return FoldChecksum(checksum, 0x5ca1ab1eull);
  checksum = FoldChecksum(checksum, vv->version.block_num);
  checksum = FoldChecksum(checksum, vv->version.tx_num);
  return FoldChecksum(checksum, vv->value.size());
}

}  // namespace

const char* YcsbWorkloadToString(YcsbWorkload workload) {
  switch (workload) {
    case YcsbWorkload::kA:
      return "A";
    case YcsbWorkload::kB:
      return "B";
    case YcsbWorkload::kC:
      return "C";
    case YcsbWorkload::kD:
      return "D";
    case YcsbWorkload::kE:
      return "E";
    case YcsbWorkload::kF:
      return "F";
  }
  return "?";
}

std::optional<YcsbWorkload> YcsbWorkloadFromString(const std::string& name) {
  if (name.size() != 1) return std::nullopt;
  switch (name[0]) {
    case 'A':
    case 'a':
      return YcsbWorkload::kA;
    case 'B':
    case 'b':
      return YcsbWorkload::kB;
    case 'C':
    case 'c':
      return YcsbWorkload::kC;
    case 'D':
    case 'd':
      return YcsbWorkload::kD;
    case 'E':
    case 'e':
      return YcsbWorkload::kE;
    case 'F':
    case 'f':
      return YcsbWorkload::kF;
  }
  return std::nullopt;
}

YcsbDriver::YcsbDriver(YcsbConfig config) : config_(config) {
  if (config_.record_count == 0) config_.record_count = 1;
  if (config_.max_scan_length < 1) config_.max_scan_length = 1;
}

std::string YcsbDriver::Key(uint64_t index) {
  // 10 digits: "user" + 10 = 14 chars, inside the small-string buffer,
  // so key construction never allocates on the hot paths.
  char buf[24];
  std::snprintf(buf, sizeof(buf), "user%010llu",
                static_cast<unsigned long long>(index));
  return buf;
}

std::string YcsbDriver::Value(uint64_t tag) const {
  std::string value(config_.value_size, '\0');
  uint64_t word = 0;
  for (size_t i = 0; i < value.size(); ++i) {
    if (i % 8 == 0) word = Mix(tag + 0x9e3779b97f4a7c15ull * (i / 8 + 1));
    value[i] = static_cast<char>('a' + ((word >> ((i % 8) * 8)) & 0xFF) % 26);
  }
  return value;
}

Status YcsbDriver::Load(StateDatabase& db) {
  for (uint64_t i = 0; i < config_.record_count; ++i) {
    FABRICSIM_RETURN_NOT_OK(
        db.ApplyWrite(WriteItem{Key(i), Value(i), /*is_delete=*/false},
                      Version{0, static_cast<uint32_t>(i)}));
  }
  inserted_ = config_.record_count;
  return Status::OK();
}

YcsbCounts YcsbDriver::Run(StateDatabase& db) {
  Rng rng(config_.seed, /*stream=*/7777);
  ZipfianGenerator zipf(config_.record_count, config_.zipf_theta);
  if (inserted_ < config_.record_count) inserted_ = config_.record_count;
  YcsbCounts counts;

  auto read = [&](uint64_t index) {
    std::optional<VersionedValue> vv = db.Get(Key(index));
    ++counts.reads;
    if (vv.has_value()) ++counts.read_hits;
    counts.checksum = FoldVersion(counts.checksum, vv);
  };
  auto update = [&](uint64_t index, uint64_t op) {
    db.ApplyWrite(WriteItem{Key(index), Value(op), /*is_delete=*/false},
                  Version{1, static_cast<uint32_t>(op)});
    ++counts.updates;
  };
  auto insert = [&](uint64_t op) {
    db.ApplyWrite(WriteItem{Key(inserted_), Value(op), /*is_delete=*/false},
                  Version{1, static_cast<uint32_t>(op)});
    ++inserted_;
    ++counts.inserts;
  };

  for (uint64_t op = 0; op < config_.operation_count; ++op) {
    double p = rng.UniformDouble();
    switch (config_.workload) {
      case YcsbWorkload::kA:
        if (p < 0.5) {
          read(zipf.Next(rng));
        } else {
          update(zipf.Next(rng), op);
        }
        break;
      case YcsbWorkload::kB:
        if (p < 0.95) {
          read(zipf.Next(rng));
        } else {
          update(zipf.Next(rng), op);
        }
        break;
      case YcsbWorkload::kC:
        read(zipf.Next(rng));
        break;
      case YcsbWorkload::kD:
        if (p < 0.95) {
          // "Read latest": rank 0 is the most recent insert.
          uint64_t rank = zipf.NextRank(rng) % inserted_;
          read(inserted_ - 1 - rank);
        } else {
          insert(op);
        }
        break;
      case YcsbWorkload::kE:
        if (p < 0.95) {
          uint64_t start = zipf.Next(rng);
          uint64_t len = 1 + rng.UniformU64(
                                 static_cast<uint64_t>(config_.max_scan_length));
          std::vector<StateEntry> hits =
              db.GetRange(Key(start), Key(start + len));
          ++counts.scans;
          counts.scanned_entries += hits.size();
          counts.checksum = FoldChecksum(counts.checksum, hits.size());
          if (!hits.empty()) {
            counts.checksum =
                FoldChecksum(counts.checksum, hits.back().vv.version.block_num);
          }
        } else {
          insert(op);
        }
        break;
      case YcsbWorkload::kF:
        if (p < 0.5) {
          read(zipf.Next(rng));
        } else {
          uint64_t index = zipf.Next(rng);
          std::optional<VersionedValue> vv = db.Get(Key(index));
          counts.checksum = FoldVersion(counts.checksum, vv);
          db.ApplyWrite(WriteItem{Key(index), Value(op), /*is_delete=*/false},
                        Version{1, static_cast<uint32_t>(op)});
          ++counts.read_modify_writes;
        }
        break;
    }
  }
  return counts;
}

}  // namespace fabricsim
