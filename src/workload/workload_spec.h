#ifndef FABRICSIM_WORKLOAD_WORKLOAD_SPEC_H_
#define FABRICSIM_WORKLOAD_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "src/channels/channel_types.h"

namespace fabricsim {

/// Transaction-mix presets (paper §4.4/§4.5). For genChain, an
/// "x-heavy" workload is 80% x-transactions with the remaining types
/// uniformly sharing the other 20%. For the use-case chaincodes,
/// kReadHeavy / kReadWriteHeavy shift weight toward the read-only /
/// read-write functions; kUniform weighs every function equally.
enum class WorkloadMix {
  kUniform,
  kReadHeavy,
  kInsertHeavy,
  kUpdateHeavy,
  kDeleteHeavy,
  kRangeHeavy,
  kReadWriteHeavy,
};

const char* WorkloadMixToString(WorkloadMix mix);

/// Scale parameters of the TPC-C chaincode (src/chaincode/tpcc),
/// after Klenik & Kocsis's "TPC-C on Hyperledger Fabric". Defaults are
/// simulator-scale (the spec's 3000 customers and 100k items shrink to
/// keep bootstrap fast); the *ratios* that create the district hotspot
/// are preserved exactly — every warehouse has 10 districts and every
/// NewOrder/Payment funnels through one district row.
struct TpccConfig {
  int warehouses = 2;
  int districts_per_warehouse = 10;
  int customers_per_district = 30;
  int items = 100;
  /// TPC-C §2.4.1.5: this fraction of NewOrder transactions names an
  /// unused item id and must roll back (chaincode error, endorsement
  /// drops it client-side).
  double invalid_item_rate = 0.01;
};

/// Scale parameters of the composite-key asset-transfer scenario pack
/// (src/chaincode/asset_transfer), after the requirement patterns in
/// Ben Toumia et al.'s application-requirements study.
struct AssetTransferConfig {
  int assets = 400;
  int owners = 20;
};

/// Declarative workload description consumed by MakeWorkload().
struct WorkloadConfig {
  /// Target chaincode: "ehr", "dv", "scm", "drm", "genchain", "tpcc"
  /// or "asset" (plus anything registered through
  /// RegisterChaincodeFactory).
  std::string chaincode = "ehr";
  WorkloadMix mix = WorkloadMix::kUniform;
  /// Zipfian skew of key accesses (0 = uniform).
  double zipf_skew = 1.0;
  /// genChain only: sizes of range reads, chosen uniformly (paper: 2,
  /// 4 or 8 keys).
  std::vector<int> range_sizes = {2, 4, 8};
  /// genChain only: number of bootstrapped keys.
  uint64_t genchain_initial_keys = 100000;
  /// genChain only: include range-read transactions in the mix. The
  /// runner disables this for FabricSharp, which does not support
  /// range queries (paper §5.4.3).
  bool include_range_reads = true;
  /// genChain only: include insertKeys/deleteKeys in the mix. Inserts
  /// mint fresh keys forever and deletes stop removing once the
  /// bootstrap range is consumed, so a long mutating run grows every
  /// peer's world state without bound. Disable for endurance runs
  /// (e.g. bench_scale_ceiling) that need a static key space where
  /// memory growth measures simulator bookkeeping, not application
  /// state.
  bool genchain_mutations = true;
  /// tpcc only: schema scale (warehouse count is the sweep knob).
  TpccConfig tpcc;
  /// asset only: scenario-pack scale.
  AssetTransferConfig asset;
  /// How clients spread submissions across channels (multi-channel
  /// networks only; inert when fabric.num_channels == 1). skew is the
  /// Zipf exponent of channel popularity, channels_per_client pins
  /// each client to a subset of channels.
  ChannelAffinityConfig channel_affinity;
};

}  // namespace fabricsim

#endif  // FABRICSIM_WORKLOAD_WORKLOAD_SPEC_H_
