#ifndef FABRICSIM_WORKLOAD_WORKLOAD_SPEC_H_
#define FABRICSIM_WORKLOAD_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "src/channels/channel_types.h"

namespace fabricsim {

/// Transaction-mix presets (paper §4.4/§4.5). For genChain, an
/// "x-heavy" workload is 80% x-transactions with the remaining types
/// uniformly sharing the other 20%. For the use-case chaincodes,
/// kReadHeavy / kReadWriteHeavy shift weight toward the read-only /
/// read-write functions; kUniform weighs every function equally.
enum class WorkloadMix {
  kUniform,
  kReadHeavy,
  kInsertHeavy,
  kUpdateHeavy,
  kDeleteHeavy,
  kRangeHeavy,
  kReadWriteHeavy,
};

const char* WorkloadMixToString(WorkloadMix mix);

/// Declarative workload description consumed by MakeWorkload().
struct WorkloadConfig {
  /// Target chaincode: "ehr", "dv", "scm", "drm" or "genchain".
  std::string chaincode = "ehr";
  WorkloadMix mix = WorkloadMix::kUniform;
  /// Zipfian skew of key accesses (0 = uniform).
  double zipf_skew = 1.0;
  /// genChain only: sizes of range reads, chosen uniformly (paper: 2,
  /// 4 or 8 keys).
  std::vector<int> range_sizes = {2, 4, 8};
  /// genChain only: number of bootstrapped keys.
  uint64_t genchain_initial_keys = 100000;
  /// genChain only: include range-read transactions in the mix. The
  /// runner disables this for FabricSharp, which does not support
  /// range queries (paper §5.4.3).
  bool include_range_reads = true;
  /// genChain only: include insertKeys/deleteKeys in the mix. Inserts
  /// mint fresh keys forever and deletes stop removing once the
  /// bootstrap range is consumed, so a long mutating run grows every
  /// peer's world state without bound. Disable for endurance runs
  /// (e.g. bench_scale_ceiling) that need a static key space where
  /// memory growth measures simulator bookkeeping, not application
  /// state.
  bool genchain_mutations = true;
  /// How clients spread submissions across channels (multi-channel
  /// networks only; inert when fabric.num_channels == 1). skew is the
  /// Zipf exponent of channel popularity, channels_per_client pins
  /// each client to a subset of channels.
  ChannelAffinityConfig channel_affinity;
};

}  // namespace fabricsim

#endif  // FABRICSIM_WORKLOAD_WORKLOAD_SPEC_H_
