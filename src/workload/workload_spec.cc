#include "src/workload/workload_spec.h"

namespace fabricsim {

const char* WorkloadMixToString(WorkloadMix mix) {
  switch (mix) {
    case WorkloadMix::kUniform:
      return "Uniform";
    case WorkloadMix::kReadHeavy:
      return "ReadHeavy";
    case WorkloadMix::kInsertHeavy:
      return "InsertHeavy";
    case WorkloadMix::kUpdateHeavy:
      return "UpdateHeavy";
    case WorkloadMix::kDeleteHeavy:
      return "DeleteHeavy";
    case WorkloadMix::kRangeHeavy:
      return "RangeHeavy";
    case WorkloadMix::kReadWriteHeavy:
      return "ReadWriteHeavy";
  }
  return "unknown";
}

}  // namespace fabricsim
