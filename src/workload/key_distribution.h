#ifndef FABRICSIM_WORKLOAD_KEY_DISTRIBUTION_H_
#define FABRICSIM_WORKLOAD_KEY_DISTRIBUTION_H_

#include <cstdint>

#include "src/common/rng.h"

namespace fabricsim {

/// Key-index sampler over [0, n) with configurable Zipfian skew
/// (paper §4.5: skew 0 = uniform; positive skew concentrates accesses
/// on a popular subset). Thin deterministic wrapper over
/// ZipfianGenerator.
class KeyDistribution {
 public:
  KeyDistribution(uint64_t n, double zipf_skew);

  /// Samples one key index.
  uint64_t Sample(Rng& rng);

  /// Samples a second index different from `other` (for two-key
  /// functions like grantEhrAccess). Falls back to +1 wraparound when
  /// the space is tiny.
  uint64_t SampleOther(Rng& rng, uint64_t other);

  uint64_t n() const { return zipf_.item_count(); }
  double skew() const { return zipf_.theta(); }

 private:
  ZipfianGenerator zipf_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_WORKLOAD_KEY_DISTRIBUTION_H_
