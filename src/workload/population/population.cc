#include "src/workload/population/population.h"

#include <cmath>
#include <limits>
#include <utility>

namespace fabricsim {

double MmppConfig::MeanMultiplier() const {
  if (states.empty()) return 1.0;
  double weighted = 0.0;
  double total = 0.0;
  for (const MmppState& state : states) {
    double w = static_cast<double>(state.mean_sojourn);
    weighted += state.rate_multiplier * w;
    total += w;
  }
  return total > 0.0 ? weighted / total : 1.0;
}

uint64_t PopulationConfig::TotalUsers() const {
  uint64_t users = 0;
  for (const BehaviourClass& cls : classes) users += cls.num_users;
  return users;
}

double PopulationConfig::TotalRateTps() const {
  double rate = 0.0;
  for (const BehaviourClass& cls : classes) {
    rate += cls.aggregate_rate_tps() * cls.mmpp.MeanMultiplier();
  }
  return rate;
}

Status PopulationConfig::Validate() const {
  if (classes.empty()) {
    return Status::InvalidArgument("population has no behaviour classes");
  }
  for (const BehaviourClass& cls : classes) {
    if (cls.num_users == 0) {
      return Status::InvalidArgument("behaviour class '" + cls.name +
                                     "' has zero users");
    }
    if (!(cls.per_user_tps > 0.0)) {
      return Status::InvalidArgument("behaviour class '" + cls.name +
                                     "' needs per_user_tps > 0");
    }
    for (const MmppState& state : cls.mmpp.states) {
      if (state.rate_multiplier < 0.0 || state.mean_sojourn < 1) {
        return Status::InvalidArgument(
            "behaviour class '" + cls.name +
            "' has an MMPP state with negative rate or sub-tick sojourn");
      }
    }
    if (cls.mmpp.enabled() && cls.mmpp.MeanMultiplier() <= 0.0) {
      return Status::InvalidArgument("behaviour class '" + cls.name +
                                     "' modulates its rate to zero");
    }
    for (const SurgeWindow& surge : cls.surges) {
      if (surge.start < 0 || surge.end <= surge.start ||
          surge.multiplier < 0.0) {
        return Status::InvalidArgument(
            "behaviour class '" + cls.name +
            "' has a malformed surge window (need 0 <= start < end, "
            "multiplier >= 0)");
      }
      for (const SurgeWindow& other : cls.surges) {
        if (&other == &surge) continue;
        if (surge.start < other.end && other.start < surge.end) {
          return Status::InvalidArgument("behaviour class '" + cls.name +
                                         "' has overlapping surge windows");
        }
      }
    }
  }
  return Status::OK();
}

PopulationConfig PopulationConfig::SingleClass(uint64_t num_users,
                                               double total_rate_tps,
                                               std::string name) {
  PopulationConfig config;
  BehaviourClass cls;
  cls.name = std::move(name);
  cls.num_users = num_users;
  // Same per-user share arithmetic as the legacy StartLoad spread, so
  // a degenerate single class reproduces its doubles bit-for-bit.
  cls.per_user_tps = total_rate_tps / static_cast<double>(num_users);
  config.classes.push_back(std::move(cls));
  return config;
}

ArrivalProcess::ArrivalProcess(double rate_tps, MmppConfig mmpp, Rng rng,
                               std::vector<SurgeWindow> surges)
    : rate_tps_(rate_tps),
      mmpp_(std::move(mmpp)),
      rng_(rng),
      surges_(std::move(surges)) {
  if (mmpp_.enabled()) {
    remaining_in_state_us_ =
        rng_.Exponential(static_cast<double>(mmpp_.states[0].mean_sojourn));
  }
}

double ArrivalProcess::SurgeMultiplierAt(double t_us) const {
  for (const SurgeWindow& surge : surges_) {
    if (t_us >= static_cast<double>(surge.start) &&
        t_us < static_cast<double>(surge.end)) {
      return surge.multiplier;
    }
  }
  return 1.0;
}

double ArrivalProcess::NextSurgeBoundaryAfter(double t_us) const {
  double next = std::numeric_limits<double>::infinity();
  for (const SurgeWindow& surge : surges_) {
    double start = static_cast<double>(surge.start);
    double end = static_cast<double>(surge.end);
    if (start > t_us && start < next) next = start;
    if (end > t_us && end < next) next = end;
  }
  return next;
}

void ArrivalProcess::AdvanceState() {
  // Uniform jump among the other states: on/off for two states, a
  // symmetric MMPP beyond. One draw even for two states keeps the
  // consumption pattern uniform across configs.
  size_t n = mmpp_.states.size();
  uint64_t jump = rng_.UniformU64(n - 1);
  state_ = (state_ + 1 + static_cast<size_t>(jump)) % n;
  remaining_in_state_us_ =
      rng_.Exponential(static_cast<double>(mmpp_.states[state_].mean_sojourn));
}

SimTime ArrivalProcess::NextGap(SimTime now) {
  if (surges_.empty()) {
    // Legacy (un-surged) path, floating-point-op for floating-point-op
    // the original: reassociating the arithmetic below would perturb
    // gaps by an ulp and break bitwise-identity goldens.
    double offset_us = 0.0;
    for (;;) {
      double multiplier =
          mmpp_.enabled() ? mmpp_.states[state_].rate_multiplier : 1.0;
      double rate = rate_tps_ * multiplier;
      if (rate > 0.0) {
        double draw = rng_.Exponential(1e6 / rate);
        if (!mmpp_.enabled() || draw < remaining_in_state_us_) {
          if (mmpp_.enabled()) remaining_in_state_us_ -= draw;
          SimTime gap = static_cast<SimTime>(std::llround(offset_us + draw));
          return gap < 1 ? 1 : gap;
        }
      } else if (!mmpp_.enabled()) {
        // Unmodulated zero rate cannot produce arrivals; report a huge
        // gap instead of spinning (callers validate rate > 0 anyway).
        return kSimTimeNever;
      }
      // No arrival before the state switch (or a silent state): consume
      // the rest of the sojourn and redraw under the next state's rate —
      // exact for piecewise-constant-rate Poisson thanks to
      // memorylessness.
      offset_us += remaining_in_state_us_;
      AdvanceState();
    }
  }

  // Surged path: the instantaneous rate is piecewise constant along
  // two clocks — the MMPP sojourn (relative, random) and the surge
  // schedule (absolute, deterministic). Each iteration integrates one
  // constant-rate segment up to whichever boundary comes first;
  // memorylessness makes the segment-by-segment redraw exact.
  double offset_us = 0.0;
  for (;;) {
    double pos_us = static_cast<double>(now) + offset_us;
    double mmpp_mult =
        mmpp_.enabled() ? mmpp_.states[state_].rate_multiplier : 1.0;
    double segment_us = NextSurgeBoundaryAfter(pos_us) - pos_us;
    bool mmpp_first =
        mmpp_.enabled() && remaining_in_state_us_ <= segment_us;
    if (mmpp_first) segment_us = remaining_in_state_us_;
    double rate = rate_tps_ * mmpp_mult * SurgeMultiplierAt(pos_us);
    if (rate > 0.0) {
      double draw = rng_.Exponential(1e6 / rate);
      if (draw < segment_us) {
        if (mmpp_.enabled()) remaining_in_state_us_ -= draw;
        SimTime gap = static_cast<SimTime>(std::llround(offset_us + draw));
        return gap < 1 ? 1 : gap;
      }
    } else if (std::isinf(segment_us)) {
      // Rate modulated to zero with no boundary ahead: silent forever.
      return kSimTimeNever;
    }
    offset_us += segment_us;
    if (mmpp_first) {
      AdvanceState();
    } else if (mmpp_.enabled()) {
      remaining_in_state_us_ -= segment_us;
    }
  }
}

double ArrivalProcess::mean_rate_tps() const {
  return rate_tps_ * (mmpp_.enabled() ? mmpp_.MeanMultiplier() : 1.0);
}

}  // namespace fabricsim
