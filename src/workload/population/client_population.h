#ifndef FABRICSIM_WORKLOAD_POPULATION_CLIENT_POPULATION_H_
#define FABRICSIM_WORKLOAD_POPULATION_CLIENT_POPULATION_H_

#include <utility>

#include "src/client/client.h"
#include "src/workload/population/population.h"

namespace fabricsim {

/// Aggregated submission engine for one large behaviour class: a
/// single DES actor owning (a) the class's ArrivalProcess and (b) one
/// embedded Client that carries the class's retry policy, channel
/// affinity and workload mix. Each arrival event injects exactly one
/// transaction through Client::SubmitNow(), so the full endorsement /
/// ordering / retry / resubmission machinery is shared with the
/// per-actor path — only the arrival bookkeeping is aggregated. At any
/// instant the class costs one pending arrival event plus its
/// in-flight transactions, independent of num_users.
class ClientPopulation {
 public:
  /// `client_params.arrival_rate_tps` is ignored (the arrival process
  /// owns the clock); `client_params.load_end_time` bounds arrivals.
  ClientPopulation(Client::Params client_params, ArrivalProcess arrivals)
      : env_(client_params.env),
        load_end_time_(client_params.load_end_time),
        client_(std::move(client_params)),
        arrivals_(std::move(arrivals)) {}

  /// Schedules the first arrival.
  void Start() { ScheduleNext(); }

  Client& client() { return client_; }

 private:
  void ScheduleNext();

  Environment* env_;
  SimTime load_end_time_;
  Client client_;
  ArrivalProcess arrivals_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_WORKLOAD_POPULATION_CLIENT_POPULATION_H_
