#include "src/workload/population/client_population.h"

namespace fabricsim {

void ClientPopulation::ScheduleNext() {
  SimTime gap = arrivals_.NextGap(env_->now());
  if (gap == kSimTimeNever) return;  // silent class: no arrivals ever
  env_->Schedule(gap, [this]() {
    if (env_->now() > load_end_time_) return;  // load phase over
    client_.SubmitNow();
    ScheduleNext();
  });
}

}  // namespace fabricsim
