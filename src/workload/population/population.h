#ifndef FABRICSIM_WORKLOAD_POPULATION_POPULATION_H_
#define FABRICSIM_WORKLOAD_POPULATION_POPULATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/channels/channel_types.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/fabric/network_config.h"
#include "src/workload/workload_spec.h"

namespace fabricsim {

/// One state of a Markov-modulated Poisson process: while the chain
/// sits in this state, the class's aggregate arrival rate is scaled by
/// `rate_multiplier`; the sojourn is exponential with mean
/// `mean_sojourn`.
struct MmppState {
  double rate_multiplier = 1.0;
  SimTime mean_sojourn = 10 * kSecond;
};

/// Optional burstiness model for a behaviour class. Fewer than two
/// states means plain (unmodulated) Poisson arrivals. State
/// transitions pick uniformly among the other states, giving the
/// classic on/off (IPP) process for two states and a symmetric MMPP
/// beyond that.
struct MmppConfig {
  std::vector<MmppState> states;

  bool enabled() const { return states.size() >= 2; }

  /// Sojourn-weighted mean of the rate multipliers — the long-run
  /// effective rate scale of the modulated process (stationary
  /// distribution of the symmetric chain is sojourn-proportional).
  double MeanMultiplier() const;

  /// Two-state on/off burst model: `burst_multiplier` x rate for
  /// `burst_len` out of every `burst_len + quiet_len` (on average).
  static MmppConfig OnOff(double burst_multiplier, SimTime burst_len,
                          SimTime quiet_len) {
    MmppConfig config;
    config.states.push_back(MmppState{burst_multiplier, burst_len});
    config.states.push_back(MmppState{0.0, quiet_len});
    return config;
  }
};

/// One deterministic surge window: while simulated time is in
/// [start, end) the class's arrival rate is scaled by `multiplier`
/// (on top of any MMPP modulation). Unlike the MMPP — a random
/// environment — surges are scheduled facts ("flash sale at minute
/// two"), which is exactly what overload-protection experiments need:
/// the same overload hits at the same instant on every seed.
struct SurgeWindow {
  SimTime start = 0;
  SimTime end = 0;
  double multiplier = 1.0;
};

/// One behaviour class of the client population: `num_users` open-loop
/// users, each submitting at `per_user_tps`, sharing a retry policy,
/// channel affinity, and chaincode function mix. Small classes expand
/// into per-client `Client` actors (bitwise identical to the legacy
/// path); classes at or above PopulationConfig::aggregation_threshold
/// run as ONE aggregated arrival process — the superposition of N
/// independent Poisson processes is Poisson at N x per_user_tps, so
/// the aggregate schedules arrivals, not clients, and a million users
/// cost one pending event instead of a million.
struct BehaviourClass {
  std::string name = "default";
  uint64_t num_users = 0;
  double per_user_tps = 0.0;
  /// Per-class retry/resubmission policy; unset inherits the network
  /// config's policy (exactly what the legacy path applied).
  std::optional<ClientRetryPolicy> retry;
  /// Per-class channel affinity; unset inherits the network's
  /// affinity config.
  std::optional<ChannelAffinityConfig> affinity;
  /// Per-class chaincode function mix on the same chaincode/key space;
  /// unset shares the run's workload generator.
  std::optional<WorkloadMix> mix;
  /// Optional MMPP modulation of the class's aggregate rate.
  MmppConfig mmpp;
  /// Deterministic surge schedule (piecewise rate multiplier in
  /// absolute simulated time). Windows must be well-formed
  /// (start < end, multiplier >= 0) and non-overlapping; outside every
  /// window the multiplier is 1. A class with surges always runs
  /// aggregated — the surge clock lives in the class's arrival
  /// process, not in per-user actors.
  std::vector<SurgeWindow> surges;

  double aggregate_rate_tps() const {
    return per_user_tps * static_cast<double>(num_users);
  }
};

/// Declarative description of the whole client population. Empty
/// classes == legacy mode (the flat `arrival_rate_tps` knob spread
/// over cluster.num_clients per-actor clients).
struct PopulationConfig {
  std::vector<BehaviourClass> classes;
  /// Classes with at least this many users run aggregated; below it
  /// they expand into per-client actors. The default keeps every
  /// paper-scale config (5-25 clients) on the bitwise-identical
  /// per-actor path.
  uint64_t aggregation_threshold = 64;

  bool empty() const { return classes.empty(); }
  uint64_t TotalUsers() const;
  double TotalRateTps() const;
  Status Validate() const;

  /// Single Poisson class covering `num_users` identical users.
  static PopulationConfig SingleClass(uint64_t num_users,
                                      double total_rate_tps,
                                      std::string name = "default");
};

/// Samples interarrival gaps of one behaviour class's aggregate
/// process: superposed Poisson at rate `rate_tps`, optionally
/// modulated by an MMPP whose piecewise-constant rate is integrated
/// exactly (memorylessness lets each segment redraw). Gaps are rounded
/// to the nearest tick and clamped to >= 1, matching the per-client
/// Client arrival clock.
class ArrivalProcess {
 public:
  ArrivalProcess(double rate_tps, MmppConfig mmpp, Rng rng,
                 std::vector<SurgeWindow> surges = {});

  /// Gap from `now` to the next arrival, advancing the modulation
  /// chain. `now` anchors the deterministic surge schedule (ignored —
  /// and the draw sequence unchanged — when no surges are configured).
  SimTime NextGap(SimTime now);

  /// Long-run mean arrival rate, MMPP modulation included. Surge
  /// windows are transient and deliberately excluded.
  double mean_rate_tps() const;

 private:
  void AdvanceState();
  /// Surge multiplier in effect at absolute time `t_us` (1.0 outside
  /// every window) and the first window boundary strictly after it
  /// (infinity when none remains).
  double SurgeMultiplierAt(double t_us) const;
  double NextSurgeBoundaryAfter(double t_us) const;

  double rate_tps_;
  MmppConfig mmpp_;
  Rng rng_;
  std::vector<SurgeWindow> surges_;
  size_t state_ = 0;
  /// Simulated time left in the current MMPP state (modulated only).
  double remaining_in_state_us_ = 0.0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_WORKLOAD_POPULATION_POPULATION_H_
