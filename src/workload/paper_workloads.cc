#include "src/workload/paper_workloads.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/chaincode/digital_voting.h"
#include "src/chaincode/drm.h"
#include "src/chaincode/ehr.h"
#include "src/chaincode/genchain.h"
#include "src/chaincode/registry.h"
#include "src/chaincode/supply_chain.h"
#include "src/common/strings.h"
#include "src/workload/key_distribution.h"

namespace fabricsim {
namespace {

using Entry = FunctionMixWorkload::Entry;

// ---------------------------------------------------------------- EHR

std::unique_ptr<WorkloadGenerator> MakeEhrWorkload(double skew,
                                                   WorkloadMix mix) {
  auto keys = std::make_shared<KeyDistribution>(100, skew);
  auto prof = [keys](Rng& rng) {
    return EhrChaincode::ProfileKey(static_cast<int>(keys->Sample(rng)));
  };
  auto record = [keys](Rng& rng) {
    return EhrChaincode::RecordKey(static_cast<int>(keys->Sample(rng)));
  };
  auto actor = [](Rng& rng) {
    return "ACTOR" + PadKey(rng.UniformU64(50), 3);
  };

  // Weight of the read-only vs read-write functions by mix. Uniform
  // invokes every function equally (paper default).
  double w_read = 1.0;
  double w_write = 1.0;
  if (mix == WorkloadMix::kReadHeavy) {
    w_read = 5.0;
    w_write = 0.625;  // 4 read fns * 5 : 5 write fns * 0.625 => 80:20 ratio
  } else if (mix == WorkloadMix::kReadWriteHeavy ||
             mix == WorkloadMix::kUpdateHeavy) {
    w_read = 0.4;
    w_write = 1.48;
  }

  std::vector<Entry> entries;
  entries.push_back({w_write, [prof, actor](Rng& rng) {
                       return Invocation{"grantProfileAccess",
                                         {prof(rng), actor(rng)}};
                     }});
  entries.push_back({w_write, [prof, actor](Rng& rng) {
                       return Invocation{"revokeProfileAccess",
                                         {prof(rng), actor(rng)}};
                     }});
  entries.push_back({w_write, [record, prof, actor](Rng& rng) {
                       return Invocation{"grantEhrAccess",
                                         {record(rng), prof(rng), actor(rng)}};
                     }});
  entries.push_back({w_write, [record, prof, actor](Rng& rng) {
                       return Invocation{"revokeEhrAccess",
                                         {record(rng), prof(rng), actor(rng)}};
                     }});
  entries.push_back({w_write, [record, prof](Rng& rng) {
                       return Invocation{
                           "addEhr",
                           {record(rng), prof(rng), "scan-result"}};
                     }});
  entries.push_back({w_read, [prof](Rng& rng) {
                       return Invocation{"readProfile", {prof(rng)}};
                     }});
  entries.push_back({w_read, [prof](Rng& rng) {
                       return Invocation{"viewPartialProfile", {prof(rng)}};
                     }});
  entries.push_back({w_read, [record](Rng& rng) {
                       return Invocation{"viewEHR", {record(rng)}};
                     }});
  entries.push_back({w_read, [record](Rng& rng) {
                       return Invocation{"queryEHR", {record(rng)}};
                     }});
  return std::make_unique<FunctionMixWorkload>("ehr", std::move(entries));
}

// ----------------------------------------------------------------- DV

std::unique_ptr<WorkloadGenerator> MakeDvWorkload(double skew,
                                                  WorkloadMix mix) {
  auto voters = std::make_shared<KeyDistribution>(1000, skew);
  auto parties = std::make_shared<KeyDistribution>(12, skew);
  double w_vote = 1.0;
  double w_query = 1.0;
  if (mix == WorkloadMix::kReadHeavy) {
    w_vote = 0.5;
    w_query = 2.0;
  }
  std::vector<Entry> entries;
  entries.push_back({w_vote, [voters, parties](Rng& rng) {
                       return Invocation{
                           "vote",
                           {DigitalVotingChaincode::VoterKey(
                                static_cast<int>(voters->Sample(rng))),
                            DigitalVotingChaincode::PartyKey(
                                static_cast<int>(parties->Sample(rng)))}};
                     }});
  entries.push_back({w_query, [](Rng&) {
                       return Invocation{"qryParties", {}};
                     }});
  entries.push_back({w_query, [](Rng&) {
                       return Invocation{"seeResults", {}};
                     }});
  return std::make_unique<FunctionMixWorkload>("dv", std::move(entries));
}

// ---------------------------------------------------------------- SCM

/// Tracks the workload's optimistic view of unit locations. Failed
/// transactions make the view stale, which is fine: the chaincode is
/// lenient about missing units, preserving the operation footprint.
struct ScmState {
  explicit ScmState(const std::vector<int>& counts) {
    int gtin = 0;
    for (size_t lsp = 0; lsp < counts.size(); ++lsp) {
      for (int u = 0; u < counts[lsp]; ++u, ++gtin) {
        location.push_back(static_cast<int>(lsp));
      }
    }
  }
  std::vector<int> location;  // gtin -> assumed LSP
  int asn_seq = 0;
};

std::unique_ptr<WorkloadGenerator> MakeScmWorkload(double skew,
                                                   WorkloadMix mix,
                                                   bool rich_supported) {
  const std::vector<int> counts = {400, 400, 400, 400, 800};
  auto state = std::make_shared<ScmState>(counts);
  auto gtins = std::make_shared<KeyDistribution>(state->location.size(), skew);
  int num_lsps = static_cast<int>(counts.size());

  double w_write = 1.0;
  double w_query = 1.0;
  if (mix == WorkloadMix::kReadHeavy) {
    w_write = 0.4;
    w_query = 2.0;
  }

  std::vector<Entry> entries;
  entries.push_back({w_write, [state, num_lsps](Rng& rng) {
                       int from = static_cast<int>(rng.UniformU64(
                           static_cast<uint64_t>(num_lsps)));
                       int to = (from + 1 + static_cast<int>(rng.UniformU64(
                                                static_cast<uint64_t>(
                                                    num_lsps - 1)))) %
                                num_lsps;
                       return Invocation{
                           "pushASN",
                           {SupplyChainChaincode::AsnKey(state->asn_seq++),
                            "LSP" + std::to_string(from),
                            "LSP" + std::to_string(to)}};
                     }});
  entries.push_back(
      {w_write, [state, gtins, num_lsps](Rng& rng) {
         int gtin = static_cast<int>(gtins->Sample(rng));
         int from = state->location[static_cast<size_t>(gtin)];
         int to = (from + 1 + static_cast<int>(rng.UniformU64(
                                  static_cast<uint64_t>(num_lsps - 1)))) %
                  num_lsps;
         int asn = state->asn_seq > 0
                       ? static_cast<int>(rng.UniformU64(
                             static_cast<uint64_t>(state->asn_seq)))
                       : 0;
         state->location[static_cast<size_t>(gtin)] = to;
         return Invocation{"Ship",
                           {SupplyChainChaincode::AsnKey(asn),
                            SupplyChainChaincode::UnitKey(from, gtin),
                            SupplyChainChaincode::UnitKey(to, gtin)}};
       }});
  entries.push_back({w_write, [state, gtins](Rng& rng) {
                       int gtin = static_cast<int>(gtins->Sample(rng));
                       int lsp = state->location[static_cast<size_t>(gtin)];
                       return Invocation{
                           "Unload",
                           {SupplyChainChaincode::UnitKey(lsp, gtin),
                            SupplyChainChaincode::LspKey(lsp)}};
                     }});
  entries.push_back({w_query, [num_lsps](Rng& rng) {
                       return Invocation{
                           "queryASN",
                           {std::to_string(rng.UniformU64(
                               static_cast<uint64_t>(num_lsps)))}};
                     }});
  if (rich_supported) {
    entries.push_back({w_query, [num_lsps](Rng& rng) {
                         return Invocation{
                             "queryStock",
                             {std::to_string(rng.UniformU64(
                                 static_cast<uint64_t>(num_lsps)))}};
                       }});
  }
  return std::make_unique<FunctionMixWorkload>("scm", std::move(entries));
}

// ---------------------------------------------------------------- DRM

std::unique_ptr<WorkloadGenerator> MakeDrmWorkload(double skew,
                                                   WorkloadMix mix,
                                                   bool rich_supported) {
  auto arts = std::make_shared<KeyDistribution>(200, skew);
  auto holders = std::make_shared<KeyDistribution>(200, skew);
  auto create_seq = std::make_shared<int>(200);

  double w_write = 1.0;
  double w_read = 1.0;
  if (mix == WorkloadMix::kReadHeavy) {
    w_write = 0.4;
    w_read = 2.0;
  }

  std::vector<Entry> entries;
  entries.push_back({w_write, [holders, create_seq](Rng& rng) {
                       int art = (*create_seq)++;
                       int holder = static_cast<int>(holders->Sample(rng));
                       return Invocation{
                           "create",
                           {DrmChaincode::ArtworkKey(art),
                            DrmChaincode::RightsKey(art),
                            DrmChaincode::HolderKey(holder)}};
                     }});
  entries.push_back({w_write, [arts](Rng& rng) {
                       int art = static_cast<int>(arts->Sample(rng));
                       return Invocation{"play",
                                         {DrmChaincode::ArtworkKey(art),
                                          DrmChaincode::RightsKey(art)}};
                     }});
  entries.push_back({w_read, [arts](Rng& rng) {
                       int art = static_cast<int>(arts->Sample(rng));
                       return Invocation{"queryRghts",
                                         {DrmChaincode::ArtworkKey(art),
                                          DrmChaincode::RightsKey(art)}};
                     }});
  entries.push_back({w_read, [arts](Rng& rng) {
                       return Invocation{
                           "viewMetaData",
                           {DrmChaincode::ArtworkKey(
                               static_cast<int>(arts->Sample(rng)))}};
                     }});
  if (rich_supported) {
    entries.push_back({w_read, [holders](Rng& rng) {
                         return Invocation{
                             "calcRevenue",
                             {DrmChaincode::HolderKey(
                                 static_cast<int>(holders->Sample(rng)))}};
                       }});
  }
  return std::make_unique<FunctionMixWorkload>("drm", std::move(entries));
}

// ----------------------------------------------------------- genChain

struct GenState {
  uint64_t insert_seq;
  uint64_t delete_cursor;
};

std::unique_ptr<WorkloadGenerator> MakeGenWorkload(
    const WorkloadConfig& config) {
  uint64_t n = config.genchain_initial_keys;
  auto keys = std::make_shared<KeyDistribution>(n, config.zipf_skew);
  auto state = std::make_shared<GenState>(GenState{n, n});
  auto range_sizes =
      std::make_shared<std::vector<int>>(config.range_sizes.empty()
                                             ? std::vector<int>{2, 4, 8}
                                             : config.range_sizes);

  // Mix weights: 80% for the heavy type, 5% for each of the others
  // (paper §4.4). Uniform: 20% each.
  auto weight = [&](WorkloadMix heavy) {
    return config.mix == heavy ? 80.0
           : config.mix == WorkloadMix::kUniform ||
                   config.mix == WorkloadMix::kReadWriteHeavy
               ? 20.0
               : 5.0;
  };

  std::vector<Entry> entries;
  entries.push_back({weight(WorkloadMix::kReadHeavy), [keys](Rng& rng) {
                       return Invocation{
                           "readKeys", {GenChaincode::Key(keys->Sample(rng))}};
                     }});
  if (config.genchain_mutations) {
    entries.push_back({weight(WorkloadMix::kInsertHeavy), [state](Rng&) {
                         return Invocation{
                             "insertKeys",
                             {GenChaincode::Key(state->insert_seq++)}};
                       }});
  }
  entries.push_back({weight(WorkloadMix::kUpdateHeavy), [keys](Rng& rng) {
                       return Invocation{
                           "updateKeys",
                           {GenChaincode::Key(keys->Sample(rng))}};
                     }});
  if (config.genchain_mutations) {
    entries.push_back({weight(WorkloadMix::kDeleteHeavy), [state](Rng&) {
                         // Unique, previously untouched keys from the
                         // top of the bootstrapped range downwards.
                         uint64_t key = state->delete_cursor > 0
                                            ? --state->delete_cursor
                                            : 0;
                         return Invocation{"deleteKeys",
                                           {GenChaincode::Key(key)}};
                       }});
  }
  if (config.include_range_reads) {
    entries.push_back(
        {weight(WorkloadMix::kRangeHeavy), [keys, range_sizes, n](Rng& rng) {
           int len = (*range_sizes)[rng.UniformU64(range_sizes->size())];
           uint64_t start = keys->Sample(rng);
           if (start + static_cast<uint64_t>(len) > n && n > 0) {
             start = n - static_cast<uint64_t>(len);
           }
           return Invocation{
               "rangeReadKeys",
               {GenChaincode::Key(start),
                GenChaincode::Key(start + static_cast<uint64_t>(len))}};
         }});
  }
  return std::make_unique<FunctionMixWorkload>("genChain", std::move(entries));
}

}  // namespace

Result<std::unique_ptr<WorkloadGenerator>> MakeWorkload(
    const WorkloadConfig& config, bool rich_queries_supported) {
  const std::string& cc = config.chaincode;
  if (cc == "ehr") return MakeEhrWorkload(config.zipf_skew, config.mix);
  if (cc == "dv") return MakeDvWorkload(config.zipf_skew, config.mix);
  if (cc == "scm") {
    return MakeScmWorkload(config.zipf_skew, config.mix,
                           rich_queries_supported);
  }
  if (cc == "drm") {
    return MakeDrmWorkload(config.zipf_skew, config.mix,
                           rich_queries_supported);
  }
  if (cc == "genchain" || cc == "genChain") return MakeGenWorkload(config);
  // Catalogued chaincodes (tpcc, asset, anything registered through
  // RegisterChaincodeFactory) bring their own generator factory.
  std::optional<ChaincodeFactory> factory = FindChaincodeFactory(cc);
  if (factory.has_value() && factory->make_workload) {
    return factory->make_workload(config, rich_queries_supported);
  }
  return Status::InvalidArgument(UnknownChaincodeError(cc));
}

}  // namespace fabricsim
