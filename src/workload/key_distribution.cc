#include "src/workload/key_distribution.h"

namespace fabricsim {

KeyDistribution::KeyDistribution(uint64_t n, double zipf_skew)
    : zipf_(n, zipf_skew) {}

uint64_t KeyDistribution::Sample(Rng& rng) { return zipf_.Next(rng); }

uint64_t KeyDistribution::SampleOther(Rng& rng, uint64_t other) {
  if (n() <= 1) return other;
  for (int attempt = 0; attempt < 8; ++attempt) {
    uint64_t k = Sample(rng);
    if (k != other) return k;
  }
  return (other + 1) % n();
}

}  // namespace fabricsim
