#ifndef FABRICSIM_COMMON_STATUS_H_
#define FABRICSIM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace fabricsim {

/// Error categories used across the library. The library never throws;
/// all fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// Lightweight status object, modelled after the Status idiom used by
/// LevelDB/RocksDB/Arrow. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "<CODE>: <message>" ("OK" when ok).
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the
/// value of an errored Result aborts, so callers must check ok() first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? value_.value() : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define FABRICSIM_RETURN_NOT_OK(expr)            \
  do {                                           \
    ::fabricsim::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace fabricsim

#endif  // FABRICSIM_COMMON_STATUS_H_
