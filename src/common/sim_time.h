#ifndef FABRICSIM_COMMON_SIM_TIME_H_
#define FABRICSIM_COMMON_SIM_TIME_H_

#include <cstdint>

namespace fabricsim {

/// Simulated time in microseconds since the start of a run. Signed so
/// that subtraction yields durations without surprises.
using SimTime = int64_t;

/// Duration aliases (all in SimTime microseconds).
inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// "End of time" sentinel for open-ended windows (e.g. a fault window
/// that never closes).
inline constexpr SimTime kSimTimeNever = INT64_MAX;

/// Converts a SimTime duration to (floating point) seconds.
inline double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a SimTime duration to (floating point) milliseconds.
inline double ToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Converts (floating point) seconds to SimTime, rounding down.
inline SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

/// Converts (floating point) milliseconds to SimTime, rounding down.
inline SimTime FromMillis(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}

}  // namespace fabricsim

#endif  // FABRICSIM_COMMON_SIM_TIME_H_
