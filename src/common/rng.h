#ifndef FABRICSIM_COMMON_RNG_H_
#define FABRICSIM_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace fabricsim {

/// PCG32 pseudo-random generator (O'Neill 2014). Small, fast and fully
/// deterministic across platforms, which the simulation relies on for
/// reproducible experiments.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same (seed, stream)
  /// produce identical sequences.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Returns the next 32 random bits.
  uint32_t NextU32();

  /// Returns the next 64 random bits.
  uint64_t NextU64();

  /// Returns a uniform integer in [0, bound) without modulo bias.
  /// `bound` must be > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns a uniform double in [lo, hi).
  double UniformRange(double lo, double hi);

  /// Returns an exponentially distributed sample with the given mean.
  double Exponential(double mean);

  /// Returns a normally distributed sample (Box–Muller).
  double Normal(double mean, double stddev);

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Derives a child generator with an independent stream; used to give
  /// each simulation actor its own deterministic randomness.
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// Zipfian distribution over {0, ..., n-1} with exponent `theta`,
/// following the Gray et al. construction used by YCSB. theta == 0
/// degenerates to the uniform distribution. Ranks are scattered over
/// the key space via a multiplicative hash so that "popular" keys are
/// not clustered at one end, matching the paper's workload generator.
class ZipfianGenerator {
 public:
  /// Builds a generator over `n` items (n >= 1) with skew `theta >= 0`.
  ZipfianGenerator(uint64_t n, double theta);

  /// Samples an item index in [0, n).
  uint64_t Next(Rng& rng);

  /// Samples a *rank* in [0, n): 0 is the most popular rank. Unlike
  /// Next(), ranks are not scattered.
  uint64_t NextRank(Rng& rng);

  uint64_t item_count() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2theta_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_COMMON_RNG_H_
