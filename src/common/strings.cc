#include "src/common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace fabricsim {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string StrTrim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b &&
         (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
          s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

std::string PadKey(uint64_t value, int width) {
  std::string digits = std::to_string(value);
  if (static_cast<int>(digits.size()) >= width) return digits;
  return std::string(static_cast<size_t>(width) - digits.size(), '0') + digits;
}

namespace {
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace

uint64_t Fnv1a(const std::string& data) {
  return Fnv1aCombine(kFnvOffset, data);
}

uint64_t Fnv1aCombine(uint64_t seed, const std::string& data) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Fnv1aCombine(uint64_t seed, uint64_t value) {
  uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace fabricsim
