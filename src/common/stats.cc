#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace fabricsim {

void SummaryStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  size_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.count_) /
                            static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(count_) *
            static_cast<double>(other.count_) / static_cast<double>(n);
  mean_ = mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {
// Buckets: [0, 0.001ms) then geometric with ratio kRatio (1.06)
// starting at 1 microsecond, covering up to ~hours in 512 buckets.
constexpr double kFirstBucket = 0.001;
constexpr double kRatio = 1.06;
}  // namespace

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

size_t Histogram::BucketFor(double value) const {
  if (value < kFirstBucket) return 0;
  double idx = std::log(value / kFirstBucket) / std::log(kRatio);
  size_t bucket = static_cast<size_t>(idx) + 1;
  return std::min(bucket, kBucketCount - 1);
}

double Histogram::BucketLow(size_t index) const {
  if (index == 0) return 0.0;
  return kFirstBucket * std::pow(kRatio, static_cast<double>(index - 1));
}

double Histogram::BucketHigh(size_t index) const {
  return kFirstBucket * std::pow(kRatio, static_cast<double>(index));
}

void Histogram::Add(double value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  max_ = std::max(max_, value);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double next = cum + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      double frac = (target - cum) / static_cast<double>(buckets_[i]);
      // Interpolation inside the bucket holding the largest sample can
      // land past that sample (e.g. Percentile(1.0) at the bucket's
      // upper edge); never report more than the observed maximum.
      return std::min(BucketLow(i) + frac * (BucketHigh(i) - BucketLow(i)),
                      max_);
    }
    cum = next;
  }
  return max_;
}

}  // namespace fabricsim
