#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace fabricsim {

void SummaryStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  size_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.count_) /
                            static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(count_) *
            static_cast<double>(other.count_) / static_cast<double>(n);
  mean_ = mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {
// Buckets: [0, 0.001ms) then geometric with ratio kRatio (1.06)
// starting at 1 microsecond, covering up to ~hours in 512 buckets.
constexpr double kFirstBucket = 0.001;
constexpr double kRatio = 1.06;
}  // namespace

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

size_t Histogram::BucketFor(double value) const {
  if (value < kFirstBucket) return 0;
  double idx = std::log(value / kFirstBucket) / std::log(kRatio);
  size_t bucket = static_cast<size_t>(idx) + 1;
  return std::min(bucket, kBucketCount - 1);
}

double Histogram::BucketLow(size_t index) const {
  if (index == 0) return 0.0;
  return kFirstBucket * std::pow(kRatio, static_cast<double>(index - 1));
}

double Histogram::BucketHigh(size_t index) const {
  return kFirstBucket * std::pow(kRatio, static_cast<double>(index));
}

void Histogram::Add(double value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)]++;
  min_ = count_ == 0 ? value : std::min(min_, value);
  count_++;
  sum_ += value;
  max_ = std::max(max_, value);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double next = cum + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      double frac = (target - cum) / static_cast<double>(buckets_[i]);
      // Interpolate only across the part of the bucket that can hold
      // data. Bucket 0 nominally spans [0, 0.001ms) and the overflow
      // bucket's BucketHigh overstates its upper edge, so both used to
      // report values no sample ever took; clamping the bucket edges
      // to the observed [min, max] keeps every interpolated quantile
      // inside the recorded range.
      double lo = std::max(BucketLow(i), min_);
      // The overflow bucket has no meaningful nominal upper edge; its
      // true range ends at the observed max.
      double hi = (i + 1 == buckets_.size())
                      ? max_
                      : std::min(BucketHigh(i), max_);
      if (hi < lo) return std::clamp(BucketLow(i), min_, max_);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return max_;
}

namespace {
// gamma and 1/ln(gamma) for the sketch's geometric buckets. Bucket i
// covers (kMinTracked * gamma^(i-1), kMinTracked * gamma^i]; the
// mid-estimate 2*gamma^i/(gamma+1) is within kRelativeError of every
// value in the bucket.
constexpr double kGamma = (1.0 + QuantileSketch::kRelativeError) /
                          (1.0 - QuantileSketch::kRelativeError);
const double kInvLogGamma = 1.0 / std::log(kGamma);

double SketchBucketEstimate(int32_t index) {
  return QuantileSketch::kMinTracked *
         std::pow(kGamma, static_cast<double>(index)) * 2.0 / (kGamma + 1.0);
}
}  // namespace

int32_t QuantileSketch::IndexFor(double value) const {
  // ceil(log_gamma(v / kMinTracked)); value > kMinTracked here.
  double idx = std::ceil(std::log(value / kMinTracked) * kInvLogGamma);
  return static_cast<int32_t>(idx);
}

void QuantileSketch::Add(double value) {
  if (value < 0 || !std::isfinite(value)) value = 0;
  min_ = count_ == 0 ? value : std::min(min_, value);
  max_ = count_ == 0 ? value : std::max(max_, value);
  ++count_;
  sum_ += value;
  if (value <= kMinTracked) {
    ++zero_count_;
    return;
  }
  ++buckets_[IndexFor(value)];
  if (buckets_.size() > kMaxBuckets) CollapseLowest();
}

void QuantileSketch::CollapseLowest() {
  // Fold the lowest bucket into the zero bucket: bounded memory at the
  // cost of low-tail accuracy, which only a pathological value range
  // (> ~25 decades) can trigger.
  auto lowest = buckets_.begin();
  zero_count_ += lowest->second;
  buckets_.erase(lowest);
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  for (const auto& [index, n] : other.buckets_) {
    buckets_[index] += n;
    if (buckets_.size() > kMaxBuckets) CollapseLowest();
  }
}

double QuantileSketch::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank walk: the smallest bucket whose cumulative count reaches
  // ceil(q * count) holds the q-quantile sample; report its
  // mid-estimate clamped to the observed range.
  uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  uint64_t cum = zero_count_;
  if (target <= cum) return min_;
  for (const auto& [index, n] : buckets_) {
    cum += n;
    if (cum >= target) {
      return std::clamp(SketchBucketEstimate(index), min_, max_);
    }
  }
  return max_;
}

size_t QuantileSketch::ApproxMemoryBytes() const {
  // Red-black tree node: key+value plus three pointers and color.
  constexpr size_t kNodeBytes =
      sizeof(int32_t) + sizeof(uint64_t) + 4 * sizeof(void*);
  return sizeof(*this) + buckets_.size() * kNodeBytes;
}

}  // namespace fabricsim
