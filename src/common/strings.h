#ifndef FABRICSIM_COMMON_STRINGS_H_
#define FABRICSIM_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fabricsim {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(const std::string& s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string StrTrim(const std::string& s);

/// Zero-pads `value` to `width` digits, e.g. PadKey(7, 4) == "0007".
/// Fabric range queries compare keys lexicographically, so all numeric
/// keys in the chaincodes use fixed-width encoding.
std::string PadKey(uint64_t value, int width);

/// FNV-1a 64-bit hash, used for read/write-set digests.
uint64_t Fnv1a(const std::string& data);
uint64_t Fnv1aCombine(uint64_t seed, const std::string& data);
uint64_t Fnv1aCombine(uint64_t seed, uint64_t value);

}  // namespace fabricsim

#endif  // FABRICSIM_COMMON_STRINGS_H_
