#include "src/common/rng.h"

#include <cmath>

namespace fabricsim {

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

uint64_t Rng::UniformU64(uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformRange(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Exponential(double mean) {
  // A non-positive (or NaN) mean has no exponential distribution; the
  // old code silently returned negative/NaN draws that wrecked event
  // scheduling downstream. Degenerate means collapse to 0 without
  // consuming randomness, so callers with a guarded rate draw the same
  // stream as before.
  if (!(mean > 0.0)) return 0.0;
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Fork(uint64_t stream_id) {
  // Derive the child's seed from our stream so forks are independent.
  uint64_t child_seed = NextU64();
  return Rng(child_seed, stream_id * 2654435761ULL + 0x9e3779b97f4a7c15ULL);
}

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

// Scatters a rank over [0, n) so popular keys are spread across the
// key space (same trick as YCSB's ScrambledZipfian).
uint64_t Scatter(uint64_t rank, uint64_t n) {
  uint64_t h = rank * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return h % n;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  if (theta_ <= 0.0) {
    theta_ = 0.0;
    zetan_ = alpha_ = eta_ = zeta2theta_ = 0.0;
    return;
  }
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::NextRank(Rng& rng) {
  if (theta_ == 0.0) return rng.UniformU64(n_);
  double u = rng.UniformDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  // theta == 1 makes alpha_ infinite; fall back to inverse-CDF search.
  if (!std::isfinite(alpha_)) {
    double cum = 0.0;
    for (uint64_t i = 1; i <= n_; ++i) {
      cum += 1.0 / (static_cast<double>(i) * zetan_);
      if (u <= cum) return i - 1;
    }
    return n_ - 1;
  }
  uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  uint64_t rank = NextRank(rng);
  if (theta_ == 0.0) return rank;  // already uniform, no need to scatter
  return Scatter(rank, n_);
}

}  // namespace fabricsim
