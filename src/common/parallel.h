#ifndef FABRICSIM_COMMON_PARALLEL_H_
#define FABRICSIM_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fabricsim {

/// Number of worker threads experiment-level fan-out should use.
/// Initialized lazily from the FABRICSIM_JOBS environment variable
/// (falling back to std::thread::hardware_concurrency). Always >= 1;
/// 1 means the strictly serial path.
int ParallelJobs();

/// Overrides the job count programmatically (tests, benches). Values
/// < 1 are clamped to 1.
void SetParallelJobs(int jobs);

/// Re-reads FABRICSIM_JOBS / hardware_concurrency, ignoring any prior
/// SetParallelJobs override. Returns the resulting job count.
int ParallelJobsFromEnv();

/// A small fixed-size thread pool with one shared FIFO queue and no
/// work stealing. Simulations themselves stay single-threaded; the
/// pool only fans out *independent* DES instances (one per (config,
/// repetition) job), so workers never share mutable state — each job
/// writes to its own pre-assigned output slot.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one job. Jobs must not throw across the pool boundary;
  /// ParallelFor wraps user callbacks so exceptions are captured and
  /// rethrown on the calling thread.
  void Submit(std::function<void()> job);

  /// Blocks until every submitted job has finished executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0..n-1) across up to `jobs` threads and blocks until all
/// calls finish. With jobs <= 1 (or n <= 1) the calls run inline, in
/// index order, with zero threading overhead — exactly the historical
/// serial path. If any call throws, the exception thrown by the
/// *lowest index* is rethrown on the calling thread after all jobs
/// complete (the serial path fails at the lowest index first, so the
/// observable error is identical in both modes).
void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& fn);

/// Maps fn over [0, n) into an order-preserving vector: out[i] =
/// fn(i), regardless of which worker ran which index. T must be
/// default-constructible; results are written into pre-sized slots so
/// no synchronization of the output is needed.
template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t n, int jobs, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(n, jobs, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace fabricsim

#endif  // FABRICSIM_COMMON_PARALLEL_H_
