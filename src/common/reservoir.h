#ifndef FABRICSIM_COMMON_RESERVOIR_H_
#define FABRICSIM_COMMON_RESERVOIR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.h"

namespace fabricsim {

/// Uniform reservoir sampler (Vitter's Algorithm R): keeps a uniform
/// sample of at most `capacity` items from a stream of unknown length,
/// in O(capacity) memory. The streaming observability path uses it to
/// retain exemplar failure traces after dense span storage is gone.
///
/// Draws come from the sampler's own Rng, so sampling never perturbs
/// the simulation's RNG streams; for a fixed seed and input stream the
/// retained set is deterministic.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed, /*stream=*/0x9e3779b9u) {}

  /// Offers one item; takes ownership (items may be move-only).
  void Offer(T item) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(std::move(item));
      return;
    }
    if (capacity_ == 0) return;
    uint64_t j = rng_.UniformU64(seen_);
    if (j < capacity_) items_[static_cast<size_t>(j)] = std::move(item);
  }

  /// Retained sample, in reservoir-slot order (not stream order).
  const std::vector<T>& items() const { return items_; }
  std::vector<T>& items() { return items_; }
  /// Total items offered so far.
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  Rng rng_;
  uint64_t seen_ = 0;
  std::vector<T> items_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_COMMON_RESERVOIR_H_
