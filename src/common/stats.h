#ifndef FABRICSIM_COMMON_STATS_H_
#define FABRICSIM_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fabricsim {

/// Online mean/min/max/stddev accumulator (Welford's algorithm).
class SummaryStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const SummaryStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-resolution latency histogram with logarithmic-ish buckets,
/// supporting approximate percentile queries. Values are arbitrary
/// doubles >= 0 (we use milliseconds).
class Histogram {
 public:
  Histogram();

  void Add(double value);
  size_t count() const { return count_; }
  double mean() const;
  /// Largest value added so far (0 when empty).
  double max() const { return max_; }
  /// Approximate p-quantile (q in [0,1]); linear interpolation inside
  /// the bucket that contains the quantile, clamped to the observed
  /// maximum (so Percentile(1.0) == max()).
  double Percentile(double q) const;

 private:
  size_t BucketFor(double value) const;
  double BucketLow(size_t index) const;
  double BucketHigh(size_t index) const;

  static constexpr size_t kBucketCount = 512;
  std::vector<uint64_t> buckets_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_COMMON_STATS_H_
