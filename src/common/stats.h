#ifndef FABRICSIM_COMMON_STATS_H_
#define FABRICSIM_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace fabricsim {

/// Online mean/min/max/stddev accumulator (Welford's algorithm).
class SummaryStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const SummaryStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-resolution latency histogram with logarithmic-ish buckets,
/// supporting approximate percentile queries. Values are arbitrary
/// doubles >= 0 (we use milliseconds).
class Histogram {
 public:
  Histogram();

  void Add(double value);
  size_t count() const { return count_; }
  double mean() const;
  /// Smallest value added so far (0 when empty).
  double min() const { return count_ == 0 ? 0.0 : min_; }
  /// Largest value added so far (0 when empty).
  double max() const { return max_; }
  /// Approximate p-quantile (q in [0,1]); linear interpolation inside
  /// the bucket that contains the quantile, clamped to the observed
  /// [min, max] range (so Percentile(0.0) >= min() and
  /// Percentile(1.0) == max() — interpolation never invents values
  /// outside what was recorded, including in bucket 0 and the
  /// overflow bucket whose nominal edges overstate the data).
  double Percentile(double q) const;

 private:
  size_t BucketFor(double value) const;
  double BucketLow(size_t index) const;
  double BucketHigh(size_t index) const;

  static constexpr size_t kBucketCount = 512;
  std::vector<uint64_t> buckets_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mergeable DDSketch-style quantile sketch: geometric buckets sized so
/// every reported quantile of the values above kMinTracked is within
/// kRelativeError of an actually-observed value, at O(log(max/min))
/// memory regardless of how many samples stream through. This is the
/// memory-bounded replacement for dense per-sample storage in the
/// streaming observability path (Tracer phase latencies, streaming
/// ledger stats); `Histogram` above stays for the fixed-range dense
/// path.
///
/// Determinism contract: the sketch state is a pure function of the
/// multiset of added values (insertion order never matters), buckets
/// are kept in a sorted map, and queries walk them in index order — so
/// two runs that feed the same values report bit-identical quantiles.
class QuantileSketch {
 public:
  /// Documented relative-error bound for quantile values above
  /// kMinTracked, as long as no low-bucket collapse occurred (see
  /// kMaxBuckets). gamma = (1+a)/(1-a) gives |est - true| <= a * true.
  static constexpr double kRelativeError = 0.01;
  /// Values at or below this threshold land in the exact zero bucket
  /// (we track latencies in milliseconds; sub-nanosecond latencies are
  /// all "zero" for reporting purposes).
  static constexpr double kMinTracked = 1e-6;
  /// Bucket-count ceiling. ~2900 buckets span [1e-6, 1e19] at 1%
  /// error, so the cap never triggers for latencies; if a pathological
  /// stream exceeds it, the lowest buckets collapse into the zero
  /// bucket (bounded memory wins over low-tail accuracy).
  static constexpr size_t kMaxBuckets = 4096;

  void Add(double value);
  /// Merges another sketch into this one (bucket-wise counts).
  void Merge(const QuantileSketch& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Exact mean over all added values (sum/count, not bucketed).
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Approximate p-quantile (q in [0,1]), clamped to the observed
  /// [min, max]. For q*count landing in a geometric bucket the result
  /// is within kRelativeError of the true quantile value.
  double Percentile(double q) const;
  /// Bytes held by the sketch (bucket map nodes + the object itself).
  size_t ApproxMemoryBytes() const;
  /// Live bucket count (zero bucket excluded); memory is O(buckets).
  size_t bucket_count() const { return buckets_.size(); }

 private:
  int32_t IndexFor(double value) const;
  void CollapseLowest();

  /// Sorted so queries and merges iterate deterministically.
  std::map<int32_t, uint64_t> buckets_;
  uint64_t zero_count_ = 0;  ///< values <= kMinTracked (incl. clamped <0)
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_COMMON_STATS_H_
