#include "src/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

namespace fabricsim {

namespace {

int ClampJobs(int jobs) { return jobs < 1 ? 1 : jobs; }

int ReadJobsFromEnv() {
  if (const char* env = std::getenv("FABRICSIM_JOBS")) {
    int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// 0 = not yet initialized from the environment.
std::atomic<int> g_jobs{0};

}  // namespace

int ParallelJobs() {
  int jobs = g_jobs.load(std::memory_order_relaxed);
  if (jobs == 0) {
    jobs = ReadJobsFromEnv();
    g_jobs.store(jobs, std::memory_order_relaxed);
  }
  return jobs;
}

void SetParallelJobs(int jobs) {
  g_jobs.store(ClampJobs(jobs), std::memory_order_relaxed);
}

int ParallelJobsFromEnv() {
  int jobs = ReadJobsFromEnv();
  g_jobs.store(jobs, std::memory_order_relaxed);
  return jobs;
}

ThreadPool::ThreadPool(int num_threads) {
  num_threads = ClampJobs(num_threads);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(job));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  jobs = ClampJobs(jobs);
  if (jobs == 1 || n == 1) {
    // Historical serial path: in order, first exception escapes.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One exception slot per index; no locking needed since each job
  // writes only its own slot.
  std::vector<std::exception_ptr> errors(n);
  {
    ThreadPool pool(static_cast<int>(
        std::min<size_t>(static_cast<size_t>(jobs), n)));
    for (size_t i = 0; i < n; ++i) {
      pool.Submit([&fn, &errors, i] {
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.Wait();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace fabricsim
