#include "src/policy/endorsement_policy.h"

#include <algorithm>
#include <vector>

#include "src/common/strings.h"

namespace fabricsim {

EndorsementPolicy EndorsementPolicy::SignedBy(OrgId org) {
  EndorsementPolicy p;
  p.kind_ = Kind::kSignedBy;
  p.org_ = org;
  return p;
}

EndorsementPolicy EndorsementPolicy::NOutOf(
    int n, std::vector<EndorsementPolicy> subs) {
  EndorsementPolicy p;
  p.kind_ = Kind::kNOutOf;
  p.n_ = n;
  p.subs_ = std::move(subs);
  return p;
}

bool EndorsementPolicy::Evaluate(const std::set<OrgId>& signer_orgs) const {
  return EvaluateNode(signer_orgs);
}

bool EndorsementPolicy::EvaluateNode(
    const std::set<OrgId>& signer_orgs) const {
  if (kind_ == Kind::kSignedBy) {
    return signer_orgs.count(org_) > 0;
  }
  int satisfied = 0;
  for (const EndorsementPolicy& sub : subs_) {
    if (sub.EvaluateNode(signer_orgs)) ++satisfied;
    if (satisfied >= n_) return true;
  }
  return satisfied >= n_;
}

std::set<OrgId> EndorsementPolicy::MentionedOrgs() const {
  std::set<OrgId> out;
  CollectOrgs(&out);
  return out;
}

void EndorsementPolicy::CollectOrgs(std::set<OrgId>* out) const {
  if (kind_ == Kind::kSignedBy) {
    out->insert(org_);
    return;
  }
  for (const EndorsementPolicy& sub : subs_) sub.CollectOrgs(out);
}

int EndorsementPolicy::SubPolicyCount() const {
  return CountSubPolicies(/*is_root=*/true);
}

int EndorsementPolicy::CountSubPolicies(bool is_root) const {
  int count = 0;
  if (kind_ == Kind::kNOutOf && !is_root) count = 1;
  for (const EndorsementPolicy& sub : subs_) {
    count += sub.CountSubPolicies(/*is_root=*/false);
  }
  return count;
}

int EndorsementPolicy::MinSignatures() const {
  if (kind_ == Kind::kSignedBy) return 1;
  // Take the n cheapest sub-policies.
  std::vector<int> costs;
  costs.reserve(subs_.size());
  for (const EndorsementPolicy& sub : subs_) {
    costs.push_back(sub.MinSignatures());
  }
  std::sort(costs.begin(), costs.end());
  int total = 0;
  int take = std::min<int>(n_, static_cast<int>(costs.size()));
  for (int i = 0; i < take; ++i) total += costs[i];
  return total;
}

std::string EndorsementPolicy::ToString() const {
  if (kind_ == Kind::kSignedBy) {
    return StrFormat("Org%d", org_);
  }
  std::string out = StrFormat("%d-of[", n_);
  for (size_t i = 0; i < subs_.size(); ++i) {
    if (i > 0) out += ",";
    out += subs_[i].ToString();
  }
  out += "]";
  return out;
}

SimTime EndorsementPolicy::VsccParallelCost(size_t endorsement_count) const {
  // Per-signature ECDSA verification ~0.6 ms, on the worker pool.
  constexpr SimTime kBase = 200;          // 0.2 ms fixed
  constexpr SimTime kPerSignature = 600;  // 0.6 ms
  return kBase + static_cast<SimTime>(endorsement_count) * kPerSignature;
}

SimTime EndorsementPolicy::VsccSerialCost() const {
  // Each sub-policy opens another principal search space in the VSCC
  // evaluator; this parsing/search work is serial per transaction.
  constexpr SimTime kPerSubPolicy = 1000;  // 1 ms
  return static_cast<SimTime>(SubPolicyCount()) * kPerSubPolicy;
}

SimTime EndorsementPolicy::VsccCost(size_t endorsement_count) const {
  return VsccParallelCost(endorsement_count) + VsccSerialCost();
}

std::set<OrgId> EndorsementPolicy::ChooseSatisfyingOrgs(
    uint64_t rotation) const {
  std::set<OrgId> chosen;
  if (kind_ == Kind::kSignedBy) {
    chosen.insert(org_);
    return chosen;
  }
  // Order sub-policies by signature cost, rotating among ties so that
  // repeated calls spread over equivalent choices.
  std::vector<size_t> order(subs_.size());
  for (size_t i = 0; i < subs_.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int ca = subs_[a].MinSignatures();
    int cb = subs_[b].MinSignatures();
    if (ca != cb) return ca < cb;
    size_t ra = (a + rotation) % subs_.size();
    size_t rb = (b + rotation) % subs_.size();
    return ra < rb;
  });
  int needed = n_;
  for (size_t idx : order) {
    if (needed == 0) break;
    std::set<OrgId> sub = subs_[idx].ChooseSatisfyingOrgs(rotation);
    chosen.insert(sub.begin(), sub.end());
    --needed;
  }
  return chosen;
}

}  // namespace fabricsim
