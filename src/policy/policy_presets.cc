#include "src/policy/policy_presets.h"

#include <vector>

namespace fabricsim {

const char* PolicyPresetToString(PolicyPreset preset) {
  switch (preset) {
    case PolicyPreset::kP0AllOrgs:
      return "P0";
    case PolicyPreset::kP1OrgZeroPlusAny:
      return "P1";
    case PolicyPreset::kP2OneFromEachHalf:
      return "P2";
    case PolicyPreset::kP3Quorum:
      return "P3";
  }
  return "unknown";
}

namespace {

std::vector<EndorsementPolicy> OrgLeaves(int from, int to) {
  std::vector<EndorsementPolicy> leaves;
  for (int org = from; org < to; ++org) {
    leaves.push_back(EndorsementPolicy::SignedBy(org));
  }
  return leaves;
}

}  // namespace

EndorsementPolicy MakePolicy(PolicyPreset preset, int num_orgs) {
  if (num_orgs < 2) num_orgs = 2;
  switch (preset) {
    case PolicyPreset::kP0AllOrgs:
      return EndorsementPolicy::NOutOf(num_orgs, OrgLeaves(0, num_orgs));
    case PolicyPreset::kP1OrgZeroPlusAny: {
      std::vector<EndorsementPolicy> subs;
      subs.push_back(EndorsementPolicy::SignedBy(0));
      subs.push_back(EndorsementPolicy::NOutOf(1, OrgLeaves(1, num_orgs)));
      return EndorsementPolicy::NOutOf(2, std::move(subs));
    }
    case PolicyPreset::kP2OneFromEachHalf: {
      int half = num_orgs / 2;
      if (half == 0) half = 1;
      std::vector<EndorsementPolicy> subs;
      subs.push_back(EndorsementPolicy::NOutOf(1, OrgLeaves(0, half)));
      subs.push_back(EndorsementPolicy::NOutOf(1, OrgLeaves(half, num_orgs)));
      return EndorsementPolicy::NOutOf(2, std::move(subs));
    }
    case PolicyPreset::kP3Quorum:
      return EndorsementPolicy::NOutOf(num_orgs / 2 + 1,
                                       OrgLeaves(0, num_orgs));
  }
  return EndorsementPolicy::NOutOf(num_orgs, OrgLeaves(0, num_orgs));
}

}  // namespace fabricsim
