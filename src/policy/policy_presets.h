#ifndef FABRICSIM_POLICY_POLICY_PRESETS_H_
#define FABRICSIM_POLICY_POLICY_PRESETS_H_

#include <string>

#include "src/policy/endorsement_policy.h"

namespace fabricsim {

/// The endorsement policy presets of the paper's Table 5, instantiated
/// for `num_orgs` organizations (Org0..Org{N-1}).
enum class PolicyPreset {
  /// P0 (default): all N organizations must endorse.
  kP0AllOrgs,
  /// P1: 2 signatures — Org0 plus any one of the other organizations
  /// (one sub-policy).
  kP1OrgZeroPlusAny,
  /// P2: 2 signatures — one from the first half of the organizations
  /// and one from the second half (two sub-policies).
  kP2OneFromEachHalf,
  /// P3: a quorum (N/2 + 1) of the organizations.
  kP3Quorum,
};

const char* PolicyPresetToString(PolicyPreset preset);

/// Builds the preset for the given number of organizations (>= 2).
EndorsementPolicy MakePolicy(PolicyPreset preset, int num_orgs);

}  // namespace fabricsim

#endif  // FABRICSIM_POLICY_POLICY_PRESETS_H_
