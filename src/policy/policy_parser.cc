#include "src/policy/policy_parser.h"

#include <cctype>
#include <vector>

namespace fabricsim {
namespace {

/// Recursive-descent parser over the policy grammar.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<EndorsementPolicy> Parse() {
    Result<EndorsementPolicy> policy = ParsePolicy();
    if (!policy.ok()) return policy;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters in policy at " +
                                     std::to_string(pos_));
    }
    return policy;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(const std::string& token) {
    SkipSpace();
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Result<int> ParseInt() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected integer at position " +
                                     std::to_string(start));
    }
    return std::stoi(text_.substr(start, pos_ - start));
  }

  Result<EndorsementPolicy> ParsePolicy() {
    SkipSpace();
    if (Consume("Org")) {
      Result<int> org = ParseInt();
      if (!org.ok()) return org.status();
      return EndorsementPolicy::SignedBy(org.value());
    }
    Result<int> n = ParseInt();
    if (!n.ok()) return n.status();
    if (!Consume("-of")) {
      return Status::InvalidArgument("expected '-of' at position " +
                                     std::to_string(pos_));
    }
    if (!Consume("[")) {
      return Status::InvalidArgument("expected '[' at position " +
                                     std::to_string(pos_));
    }
    std::vector<EndorsementPolicy> subs;
    for (;;) {
      Result<EndorsementPolicy> sub = ParsePolicy();
      if (!sub.ok()) return sub;
      subs.push_back(std::move(sub).value());
      if (Consume(",")) continue;
      if (Consume("]")) break;
      return Status::InvalidArgument("expected ',' or ']' at position " +
                                     std::to_string(pos_));
    }
    if (n.value() <= 0 || n.value() > static_cast<int>(subs.size())) {
      return Status::InvalidArgument("n-of out of range: n=" +
                                     std::to_string(n.value()));
    }
    return EndorsementPolicy::NOutOf(n.value(), std::move(subs));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<EndorsementPolicy> PolicyParser::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace fabricsim
