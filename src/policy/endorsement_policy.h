#ifndef FABRICSIM_POLICY_ENDORSEMENT_POLICY_H_
#define FABRICSIM_POLICY_ENDORSEMENT_POLICY_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/ledger/transaction.h"

namespace fabricsim {

/// Endorsement policy expression tree. Leaves name an organization
/// ("signed by Org_k"); inner nodes are n-out-of combinators. This is
/// the same structure Fabric's policy language expresses, and the
/// paper's Table 5 policies P0–P3 are presets over it.
class EndorsementPolicy {
 public:
  /// Leaf: requires a signature from `org`.
  static EndorsementPolicy SignedBy(OrgId org);

  /// Inner node: requires `n` of the sub-policies to be satisfied.
  static EndorsementPolicy NOutOf(int n,
                                  std::vector<EndorsementPolicy> subs);

  /// True when the set of organizations that produced *matching*
  /// endorsements satisfies the policy. (Each org contributes at most
  /// one leaf satisfaction per appearance, like Fabric's MSP
  /// principals.)
  bool Evaluate(const std::set<OrgId>& signer_orgs) const;

  /// All organizations mentioned anywhere in the policy — the client
  /// sends proposals to one endorsing peer of each.
  std::set<OrgId> MentionedOrgs() const;

  /// Number of n-out-of combinators strictly below the root. The paper
  /// finds each sub-policy adds a separate VSCC search space (§5.1.4).
  int SubPolicyCount() const;

  /// Minimum number of signatures that can satisfy the policy.
  int MinSignatures() const;

  /// Policy text in the grammar of PolicyParser, e.g.
  /// "2-of[1-of[Org0],1-of[Org1,Org2]]".
  std::string ToString() const;

  /// VSCC validation service time for a transaction carrying
  /// `endorsement_count` signatures: per-signature verification plus a
  /// per-sub-policy search cost (the mechanism the paper gives for P2
  /// being slower and failing more than P1).
  SimTime VsccCost(size_t endorsement_count) const;

  /// The parallelizable part of VsccCost (signature verification runs
  /// on Fabric's validator worker pool).
  SimTime VsccParallelCost(size_t endorsement_count) const;

  /// The serial part of VsccCost: policy parsing / principal search,
  /// which grows with every sub-policy (each one is a separate search
  /// space, §5.1.4) and is not parallelized.
  SimTime VsccSerialCost() const;

  /// A minimal set of organizations whose endorsements satisfy the
  /// policy. `rotation` rotates among equivalent choices so clients
  /// spread load (SDKs use service discovery to contact minimal
  /// endorsement sets rather than every peer).
  std::set<OrgId> ChooseSatisfyingOrgs(uint64_t rotation) const;

 private:
  enum class Kind { kSignedBy, kNOutOf };

  Kind kind_ = Kind::kSignedBy;
  OrgId org_ = 0;
  int n_ = 0;
  std::vector<EndorsementPolicy> subs_;

  bool EvaluateNode(const std::set<OrgId>& signer_orgs) const;
  void CollectOrgs(std::set<OrgId>* out) const;
  int CountSubPolicies(bool is_root) const;
};

}  // namespace fabricsim

#endif  // FABRICSIM_POLICY_ENDORSEMENT_POLICY_H_
