#ifndef FABRICSIM_POLICY_POLICY_PARSER_H_
#define FABRICSIM_POLICY_POLICY_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/policy/endorsement_policy.h"

namespace fabricsim {

/// Parses the textual policy grammar used throughout this repo:
///
///   policy := "Org" INT
///           | INT "-of" "[" policy ("," policy)* "]"
///
/// Examples: "Org0", "4-of[Org0,Org1,Org2,Org3]",
/// "2-of[1-of[Org0],1-of[Org1,Org2,Org3]]". Whitespace is ignored.
class PolicyParser {
 public:
  static Result<EndorsementPolicy> Parse(const std::string& text);
};

}  // namespace fabricsim

#endif  // FABRICSIM_POLICY_POLICY_PARSER_H_
