#ifndef FABRICSIM_EXT_STREAMCHAIN_STREAMCHAIN_H_
#define FABRICSIM_EXT_STREAMCHAIN_STREAMCHAIN_H_

#include "src/fabric/network_config.h"

namespace fabricsim {

/// Streamchain (István et al., SERIAL'18) trades blocks for a stream:
/// the ordering service forwards transactions one-by-one, the
/// validation pipeline is parallelized/pipelined, and ledger + world
/// state live on a RAM disk. This header centralizes the model
/// constants; the wiring happens in FabricNetwork.
struct StreamchainModel {
  /// Speed-up of the per-transaction validation path from signature
  /// parallelization and pipelining (§5.3: "parallel validation of
  /// signatures and pipelining are implemented").
  static constexpr double kValidationCostFactor = 0.55;

  /// Whether the configuration requests the prototype's RAM disk
  /// (§5.3.3). Without it, commit costs use the normal disk profile
  /// and the system destabilizes beyond ~50 tps.
  static bool UsesRamDisk(const FabricConfig& config) {
    return config.variant == FabricVariant::kStreamchain &&
           config.streamchain_ram_disk;
  }

  /// Applies the Streamchain knobs to a config (streaming is wired by
  /// the orderer's `streaming` flag; block size/timeout are ignored).
  static void Configure(FabricConfig* config) {
    config->variant = FabricVariant::kStreamchain;
    config->block_size = 1;
  }
};

}  // namespace fabricsim

#endif  // FABRICSIM_EXT_STREAMCHAIN_STREAMCHAIN_H_
