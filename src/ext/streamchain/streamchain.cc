#include "src/ext/streamchain/streamchain.h"

namespace fabricsim {
// Constants only; see FabricNetwork for the wiring.
}  // namespace fabricsim
