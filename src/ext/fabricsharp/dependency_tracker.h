#ifndef FABRICSIM_EXT_FABRICSHARP_DEPENDENCY_TRACKER_H_
#define FABRICSIM_EXT_FABRICSHARP_DEPENDENCY_TRACKER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ledger/block.h"
#include "src/ledger/transaction.h"

namespace fabricsim {

/// FabricSharp's cross-block transaction dependency state (Ruan et
/// al., SIGMOD'20): the ordering service tracks, per key, the version
/// that the last *cut* block installed. An incoming transaction is
/// checked against this view before ordering:
///
///  * a read of the current committed version is always serializable —
///    even if the current batch holds a pending write, the reader is
///    ordered before the writer when the block is serialized;
///  * a read of any other version is hopeless (the invalidating write
///    is already cut into an earlier block) and is aborted *before*
///    ordering — it never reaches the ledger.
///
/// Range queries are not supported by FabricSharp and are rejected.
class DependencyTracker {
 public:
  enum class Decision {
    kAdmit,
    kStaleRead,   ///< read version no longer current — unserializable
    kRangeQuery,  ///< range queries are unsupported by FabricSharp
  };

  /// Checks the transaction against the tracked state. On admission
  /// the write keys gain a pending (in-batch) marker.
  Decision Admit(const Transaction& tx);

  /// Re-checks a transaction's reads at block-cut time. Catches the
  /// batch-boundary race where the invalidating write was cut into an
  /// earlier block after this transaction was admitted.
  bool StillSerializable(const Transaction& tx) const;

  /// Finalizes the versions installed by a freshly cut block:
  /// key -> (block number, tx index). Releases the pending markers of
  /// every transaction in `block` plus `aborted_at_cut` (admitted but
  /// dropped while cutting, e.g. cycle members).
  void OnBlockCut(const Block& block,
                  const std::vector<Transaction>& aborted_at_cut = {});

  /// Number of distinct keys currently tracked.
  size_t tracked_keys() const { return keys_.size(); }

 private:
  struct KeyState {
    Version committed;
    bool exists = true;
    /// Whether a committed version has been observed/installed yet.
    bool known = false;
    /// Number of admitted-but-not-yet-cut writes to this key.
    int pending = 0;
  };

  void ReleasePending(const Transaction& tx);

  std::unordered_map<std::string, KeyState> keys_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_EXT_FABRICSHARP_DEPENDENCY_TRACKER_H_
