#ifndef FABRICSIM_EXT_FABRICSHARP_FABRICSHARP_H_
#define FABRICSIM_EXT_FABRICSHARP_FABRICSHARP_H_

#include <vector>

#include "src/ext/fabricsharp/dependency_tracker.h"
#include "src/ordering/orderer.h"
#include "src/policy/endorsement_policy.h"

namespace fabricsim {

/// FabricSharp ordering-phase processor (Ruan et al., SIGMOD'20):
///
///  * admission control before ordering — transactions whose reads are
///    already stale against the cross-block dependency state abort
///    early and never reach the ledger;
///  * at block cut, the surviving transactions are serialized with a
///    conflict graph (readers before writers); unserializable cycle
///    members are also dropped from the block;
///  * final write versions are installed into the tracker, so every
///    committed transaction passes MVCC validation by construction —
///    on-chain failures collapse to endorsement policy failures only
///    (paper §5.4.1), and the committed throughput drops because
///    aborted transactions leave no ledger record (§5.4.2).
class FabricSharpProcessor : public BlockProcessor {
 public:
  /// The endorsement policy is needed at cut time: transactions that
  /// will fail VSCC never commit their writes, so their versions must
  /// not be installed into the dependency tracker (they stay in the
  /// block and surface as endorsement policy failures, matching the
  /// paper: FabricSharp "only commits successful transactions (and
  /// endorsement failures)").
  explicit FabricSharpProcessor(EndorsementPolicy policy)
      : policy_(std::move(policy)) {}

  struct Stats {
    uint64_t admitted = 0;
    uint64_t aborted_stale_read = 0;
    uint64_t aborted_range_query = 0;
    uint64_t aborted_at_cut = 0;   // boundary staleness + cycles
    uint64_t blocks_processed = 0;
  };

  bool Admit(const Transaction& tx, TxValidationCode* reject_code) override;
  SimTime OnBlockCut(Block* block,
                     std::vector<EarlyAbort>* early_aborted) override;

  const Stats& stats() const { return stats_; }
  const DependencyTracker& tracker() const { return tracker_; }

 private:
  EndorsementPolicy policy_;
  DependencyTracker tracker_;
  Stats stats_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_EXT_FABRICSHARP_FABRICSHARP_H_
