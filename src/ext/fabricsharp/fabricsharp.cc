#include "src/ext/fabricsharp/fabricsharp.h"

#include <utility>

#include "src/ext/fabricpp/conflict_graph.h"
#include "src/peer/validator.h"

namespace fabricsim {

bool FabricSharpProcessor::Admit(const Transaction& tx,
                                 TxValidationCode* reject_code) {
  switch (tracker_.Admit(tx)) {
    case DependencyTracker::Decision::kAdmit:
      ++stats_.admitted;
      return true;
    case DependencyTracker::Decision::kStaleRead:
      ++stats_.aborted_stale_read;
      break;
    case DependencyTracker::Decision::kRangeQuery:
      ++stats_.aborted_range_query;
      break;
  }
  *reject_code = TxValidationCode::kAbortedNotSerializable;
  return false;
}

SimTime FabricSharpProcessor::OnBlockCut(
    Block* block, std::vector<EarlyAbort>* early_aborted) {
  ++stats_.blocks_processed;
  std::vector<Transaction> aborted;

  // 1. Partition: transactions failing VSCC never commit writes; they
  //    stay in the block (the paper: FabricSharp commits successful
  //    transactions *and endorsement failures*) but take no part in
  //    serialization and install no versions.
  //    Batch-boundary re-check for the rest: a write cut into an
  //    earlier block may have invalidated reads admitted before that
  //    cut.
  std::vector<Transaction> survivors;
  std::vector<Transaction> vscc_failures;
  survivors.reserve(block->txs.size());
  for (Transaction& tx : block->txs) {
    if (!EndorsementSatisfiesPolicy(tx, policy_)) {
      vscc_failures.push_back(std::move(tx));
      continue;
    }
    if (tracker_.StillSerializable(tx)) {
      survivors.push_back(std::move(tx));
    } else {
      aborted.push_back(std::move(tx));
    }
  }

  // 2. Serialize via the conflict graph; unserializable cycle members
  //    are dropped (greedy minimum feedback vertex set).
  uint64_t ops = 0;
  ConflictGraph graph = ConflictGraph::Build(survivors, &ops);
  std::vector<uint32_t> cycle_aborts;
  if (graph.edge_count() > 0) {
    cycle_aborts = graph.GreedyFeedbackVertexSet(&ops);
  }
  std::vector<bool> alive(survivors.size(), true);
  for (uint32_t idx : cycle_aborts) alive[idx] = false;
  std::vector<uint32_t> order = graph.TopologicalOrder(alive, &ops);

  std::vector<Transaction> final_txs;
  final_txs.reserve(order.size() + vscc_failures.size());
  for (uint32_t idx : order) final_txs.push_back(std::move(survivors[idx]));
  for (uint32_t idx : cycle_aborts) {
    aborted.push_back(std::move(survivors[idx]));
  }

  block->txs = std::move(final_txs);

  // 3. Install final versions of the committing transactions; release
  //    pending markers of the aborted and VSCC-failing ones.
  tracker_.OnBlockCut(*block, aborted);
  tracker_.OnBlockCut(Block{}, vscc_failures);

  // The endorsement failures ride along at the tail of the block.
  for (Transaction& tx : vscc_failures) {
    block->txs.push_back(std::move(tx));
  }
  block->results.assign(block->txs.size(), TxValidationResult{});

  stats_.aborted_at_cut += aborted.size();
  if (early_aborted != nullptr) {
    for (Transaction& tx : aborted) {
      early_aborted->emplace_back(std::move(tx),
                                  TxValidationCode::kAbortedNotSerializable);
    }
  }

  // Dependency-graph maintenance cost: linear in rw-set sizes for
  // point accesses, plus the serialization work actually performed.
  SimTime cost = static_cast<SimTime>(ops / 1000 * 14);
  for (const Transaction& tx : block->txs) {
    cost += 20 * static_cast<SimTime>(tx.rwset.reads.size() +
                                      tx.rwset.writes.size());
  }
  return cost;
}

}  // namespace fabricsim
