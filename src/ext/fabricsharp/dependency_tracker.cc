#include "src/ext/fabricsharp/dependency_tracker.h"

namespace fabricsim {

DependencyTracker::Decision DependencyTracker::Admit(const Transaction& tx) {
  if (!tx.rwset.range_queries.empty()) {
    return Decision::kRangeQuery;
  }
  if (!StillSerializable(tx)) return Decision::kStaleRead;

  // Seed first-seen read versions so later transactions are checked
  // against them.
  for (const ReadItem& read : tx.rwset.reads) {
    KeyState& state = keys_[read.key];
    if (!state.known) {
      state.committed = read.version;
      state.exists = read.found;
      state.known = true;
    }
  }
  // Mark scheduled writes pending until the block is cut.
  for (const WriteItem& write : tx.rwset.writes) {
    keys_[write.key].pending++;
  }
  return Decision::kAdmit;
}

bool DependencyTracker::StillSerializable(const Transaction& tx) const {
  for (const ReadItem& read : tx.rwset.reads) {
    auto it = keys_.find(read.key);
    if (it == keys_.end()) continue;  // first sighting: trust the read
    const KeyState& state = it->second;
    if (!state.known) continue;  // only pending blind writes seen so far
    // The read must match the last cut version exactly. A pending
    // in-batch write does not invalidate it: the serializer orders
    // this reader before that writer.
    if (read.found != state.exists) return false;
    if (read.found && read.version != state.committed) return false;
  }
  return true;
}

void DependencyTracker::ReleasePending(const Transaction& tx) {
  for (const WriteItem& write : tx.rwset.writes) {
    auto it = keys_.find(write.key);
    if (it != keys_.end() && it->second.pending > 0) it->second.pending--;
  }
}

void DependencyTracker::OnBlockCut(
    const Block& block, const std::vector<Transaction>& aborted_at_cut) {
  for (uint32_t i = 0; i < block.txs.size(); ++i) {
    ReleasePending(block.txs[i]);
    for (const WriteItem& write : block.txs[i].rwset.writes) {
      KeyState& state = keys_[write.key];
      state.committed = Version{block.number, i};
      state.exists = !write.is_delete;
      state.known = true;
    }
  }
  for (const Transaction& tx : aborted_at_cut) {
    ReleasePending(tx);
  }
}

}  // namespace fabricsim
