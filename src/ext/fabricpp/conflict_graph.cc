#include "src/ext/fabricpp/conflict_graph.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>

#include "src/statedb/state_database.h"

namespace fabricsim {

ConflictGraph ConflictGraph::Build(const std::vector<Transaction>& txs,
                                   uint64_t* ops) {
  ConflictGraph graph;
  size_t n = txs.size();
  graph.adj_.assign(n, {});

  // Index writers per key.
  std::unordered_map<std::string, std::vector<uint32_t>> writers;
  for (uint32_t i = 0; i < n; ++i) {
    for (const WriteItem& w : txs[i].rwset.writes) {
      writers[w.key].push_back(i);
      ++*ops;
    }
  }

  // For every read (point or range footprint) of u, add u -> writer.
  std::vector<std::set<uint32_t>> edges(n);
  auto add_reads = [&](uint32_t u, const std::vector<ReadItem>& reads) {
    for (const ReadItem& r : reads) {
      ++*ops;
      auto it = writers.find(r.key);
      if (it == writers.end()) continue;
      for (uint32_t v : it->second) {
        ++*ops;
        if (v == u) continue;  // own writes never invalidate own reads
        edges[u].insert(v);
      }
    }
  };
  for (uint32_t u = 0; u < n; ++u) {
    add_reads(u, txs[u].rwset.reads);
    for (const RangeQueryInfo& rq : txs[u].rwset.range_queries) {
      add_reads(u, rq.reads);
      // A writer inserting a fresh key inside the interval also
      // invalidates the range; approximate by linking writers of keys
      // within [start,end) — covered above via footprint keys — plus
      // writers of keys not in the footprint but inside the interval.
      if (!rq.phantom_check) continue;
      for (const auto& [key, ws] : writers) {
        ++*ops;
        if (!KeyInRange(key, rq.start_key, rq.end_key)) continue;
        for (uint32_t v : ws) {
          if (v != u) edges[u].insert(v);
        }
      }
    }
  }
  for (uint32_t u = 0; u < n; ++u) {
    graph.adj_[u].assign(edges[u].begin(), edges[u].end());
    graph.edge_count_ += graph.adj_[u].size();
  }
  return graph;
}

std::vector<std::vector<uint32_t>>
ConflictGraph::StronglyConnectedComponents(uint64_t* ops) const {
  size_t n = adj_.size();
  std::vector<int32_t> index(n, -1);
  std::vector<int32_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  std::vector<std::vector<uint32_t>> components;
  int32_t next_index = 0;

  // Iterative Tarjan to avoid deep recursion on large blocks.
  struct Frame {
    uint32_t node;
    size_t child = 0;
  };
  for (uint32_t start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> call_stack{Frame{start}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      uint32_t u = frame.node;
      if (frame.child == 0) {
        index[u] = low[u] = next_index++;
        stack.push_back(u);
        on_stack[u] = true;
      }
      bool descended = false;
      while (frame.child < adj_[u].size()) {
        uint32_t v = adj_[u][frame.child++];
        ++*ops;
        if (index[v] == -1) {
          call_stack.push_back(Frame{v});
          descended = true;
          break;
        }
        if (on_stack[v]) low[u] = std::min(low[u], index[v]);
      }
      if (descended) continue;
      if (low[u] == index[u]) {
        std::vector<uint32_t> component;
        for (;;) {
          uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          component.push_back(w);
          if (w == u) break;
        }
        components.push_back(std::move(component));
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        uint32_t parent = call_stack.back().node;
        low[parent] = std::min(low[parent], low[u]);
      }
    }
  }
  return components;
}

std::vector<uint32_t> ConflictGraph::GreedyFeedbackVertexSet(
    uint64_t* ops) const {
  size_t n = adj_.size();
  std::vector<bool> removed(n, false);
  std::vector<uint32_t> aborted;

  // Work on a mutable copy restricted to alive nodes; repeatedly find
  // non-trivial SCCs and drop their highest-degree member.
  for (;;) {
    // Compute SCCs of the alive-induced subgraph.
    ConflictGraph sub;
    sub.adj_.assign(n, {});
    for (uint32_t u = 0; u < n; ++u) {
      if (removed[u]) continue;
      for (uint32_t v : adj_[u]) {
        ++*ops;
        if (!removed[v]) sub.adj_[u].push_back(v);
      }
    }
    std::vector<std::vector<uint32_t>> sccs =
        sub.StronglyConnectedComponents(ops);
    bool found_cycle = false;
    for (const std::vector<uint32_t>& scc : sccs) {
      if (scc.size() < 2) continue;
      found_cycle = true;
      // Abort the member with the highest (in+out) degree inside the
      // component — it participates in the most conflicts.
      uint32_t victim = scc.front();
      size_t victim_degree = 0;
      std::set<uint32_t> members(scc.begin(), scc.end());
      for (uint32_t u : scc) {
        size_t degree = 0;
        for (uint32_t v : sub.adj_[u]) {
          ++*ops;
          if (members.count(v)) ++degree;
        }
        for (uint32_t w : scc) {
          for (uint32_t v : sub.adj_[w]) {
            if (v == u) ++degree;
          }
        }
        if (degree > victim_degree ||
            (degree == victim_degree && u < victim)) {
          victim = u;
          victim_degree = degree;
        }
      }
      removed[victim] = true;
      aborted.push_back(victim);
    }
    if (!found_cycle) break;
  }
  std::sort(aborted.begin(), aborted.end());
  return aborted;
}

std::vector<uint32_t> ConflictGraph::TopologicalOrder(
    const std::vector<bool>& alive, uint64_t* ops) const {
  size_t n = adj_.size();
  std::vector<uint32_t> in_degree(n, 0);
  for (uint32_t u = 0; u < n; ++u) {
    if (!alive[u]) continue;
    for (uint32_t v : adj_[u]) {
      ++*ops;
      if (alive[v]) ++in_degree[v];
    }
  }
  // Kahn's algorithm with an ordered ready set for determinism.
  std::set<uint32_t> ready;
  for (uint32_t u = 0; u < n; ++u) {
    if (alive[u] && in_degree[u] == 0) ready.insert(u);
  }
  std::vector<uint32_t> order;
  while (!ready.empty()) {
    uint32_t u = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(u);
    for (uint32_t v : adj_[u]) {
      ++*ops;
      if (!alive[v]) continue;
      if (--in_degree[v] == 0) ready.insert(v);
    }
  }
  return order;
}

}  // namespace fabricsim
