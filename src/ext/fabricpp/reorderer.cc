#include "src/ext/fabricpp/reorderer.h"

#include <utility>
#include <vector>

#include "src/ext/fabricpp/conflict_graph.h"

namespace fabricsim {

SimTime FabricPlusPlusProcessor::OnBlockCut(
    Block* block, std::vector<EarlyAbort>* early_aborted) {
  ++stats_.blocks_processed;
  if (block->txs.size() < 2) return 0;

  uint64_t ops = 0;
  ConflictGraph graph = ConflictGraph::Build(block->txs, &ops);

  std::vector<uint32_t> aborted;
  if (graph.edge_count() > 0) {
    aborted = graph.GreedyFeedbackVertexSet(&ops);
  }
  std::vector<bool> alive(block->txs.size(), true);
  for (uint32_t idx : aborted) alive[idx] = false;

  std::vector<uint32_t> order = graph.TopologicalOrder(alive, &ops);

  // Rebuild the block with the serialized survivors; cycle members
  // are early-aborted out of the block (ordering-phase abort).
  std::vector<Transaction> new_txs;
  new_txs.reserve(order.size());
  for (uint32_t idx : order) {
    new_txs.push_back(std::move(block->txs[idx]));
  }
  for (uint32_t idx : aborted) {
    if (early_aborted != nullptr) {
      early_aborted->emplace_back(std::move(block->txs[idx]),
                                  TxValidationCode::kAbortedByReordering);
    }
  }
  block->txs = std::move(new_txs);
  block->results.assign(block->txs.size(), TxValidationResult{});

  stats_.txs_aborted += aborted.size();
  stats_.total_ops += ops;
  return static_cast<SimTime>(static_cast<double>(ops) / 1000.0 *
                              us_per_kop_);
}

}  // namespace fabricsim
