#ifndef FABRICSIM_EXT_FABRICPP_REORDERER_H_
#define FABRICSIM_EXT_FABRICPP_REORDERER_H_

#include <cstdint>

#include "src/ordering/orderer.h"

namespace fabricsim {

/// Fabric++ ordering-phase processor (Sharma et al., SIGMOD'19):
/// builds the intra-block conflict graph, aborts a greedy minimum
/// feedback vertex set to break all cycles, and serializes the
/// survivors in a conflict-free order (readers before writers). Cycle
/// members are aborted *in the ordering phase* (Fabric++'s early
/// abort): they are dropped from the block and the client is
/// notified, so — like FabricSharp — they leave no ledger record.
///
/// The processing cost charged to the ordering service is proportional
/// to the real operation count of graph construction + SCC analysis +
/// MFVS iterations, which is how large range queries (DV's 1000-voter
/// scan, SCM's 400–800-unit scans) blow up Fabric++'s latency in the
/// paper's Figure 18.
class FabricPlusPlusProcessor : public BlockProcessor {
 public:
  struct Stats {
    uint64_t blocks_processed = 0;
    uint64_t txs_aborted = 0;
    uint64_t total_ops = 0;
  };

  /// `us_per_kop` converts 1000 graph operations into ordering-service
  /// microseconds (calibration constant).
  explicit FabricPlusPlusProcessor(double us_per_kop = 14.0)
      : us_per_kop_(us_per_kop) {}

  SimTime OnBlockCut(Block* block,
                     std::vector<EarlyAbort>* early_aborted) override;

  const Stats& stats() const { return stats_; }

 private:
  double us_per_kop_;
  Stats stats_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_EXT_FABRICPP_REORDERER_H_
