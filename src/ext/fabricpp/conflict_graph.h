#ifndef FABRICSIM_EXT_FABRICPP_CONFLICT_GRAPH_H_
#define FABRICSIM_EXT_FABRICPP_CONFLICT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/ledger/transaction.h"

namespace fabricsim {

/// Conflict graph over the transactions of one block, as built by
/// Fabric++'s reordering mechanism (Sharma et al., SIGMOD'19).
///
/// Nodes are transactions; an edge u -> v means "u must be ordered
/// before v": u reads a key (directly or inside a range query) that v
/// writes. All reads were endorsed against pre-block state, so a
/// reader only stays valid if it precedes every in-block writer of the
/// keys it read. Cycles are non-serializable sets.
class ConflictGraph {
 public:
  /// Builds the graph. `ops` accumulates an operation count
  /// proportional to the real work (index build + edge derivation),
  /// which the simulation converts into ordering-service time — this
  /// is what explodes for large range queries.
  static ConflictGraph Build(const std::vector<Transaction>& txs,
                             uint64_t* ops);

  size_t node_count() const { return adj_.size(); }
  uint64_t edge_count() const { return edge_count_; }
  const std::vector<std::vector<uint32_t>>& adjacency() const { return adj_; }

  /// Strongly connected components (Tarjan, iterative). Components are
  /// returned in reverse topological order. `ops` accumulates visited
  /// nodes+edges.
  std::vector<std::vector<uint32_t>> StronglyConnectedComponents(
      uint64_t* ops) const;

  /// Greedy approximation of the minimum feedback vertex set: nodes to
  /// remove (abort) so the remaining graph is acyclic. Repeatedly
  /// removes the highest-degree node of any non-trivial SCC.
  std::vector<uint32_t> GreedyFeedbackVertexSet(uint64_t* ops) const;

  /// Topological order of the graph restricted to `alive` nodes
  /// (which must induce an acyclic subgraph). Ties broken by original
  /// index for determinism.
  std::vector<uint32_t> TopologicalOrder(const std::vector<bool>& alive,
                                         uint64_t* ops) const;

 private:
  std::vector<std::vector<uint32_t>> adj_;
  uint64_t edge_count_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_EXT_FABRICPP_CONFLICT_GRAPH_H_
