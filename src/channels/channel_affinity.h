#ifndef FABRICSIM_CHANNELS_CHANNEL_AFFINITY_H_
#define FABRICSIM_CHANNELS_CHANNEL_AFFINITY_H_

#include <optional>
#include <vector>

#include "src/channels/channel_types.h"
#include "src/common/rng.h"

namespace fabricsim {

/// Per-client channel chooser. Built once per client from the
/// workload's ChannelAffinityConfig; Pick() draws the channel each
/// submitted transaction targets.
///
/// Popularity is Zipf-ranked over the client's *visible* channels with
/// the lowest channel id as the hottest rank, so under skew every
/// client concentrates on channel 0 (or the lowest channel of its
/// pinned subset) and global popularity is skewed the same way. With
/// `channels_per_client = k > 0`, client i sees the k consecutive
/// channels starting at (i * k) mod num_channels — subsets tile the
/// channel space so every channel has at least one client when there
/// are enough clients.
///
/// Determinism contract: a client whose visible set has exactly one
/// channel never touches the RNG, so single-channel runs draw the
/// exact same stream as the pre-channel code.
class ChannelAffinity {
 public:
  /// Single-channel default: Pick() always returns channel 0.
  ChannelAffinity() = default;

  ChannelAffinity(const ChannelAffinityConfig& config, int num_channels,
                  int client_index);

  /// Channel for the next transaction. Draws from `rng` only when
  /// more than one channel is visible.
  ChannelId Pick(Rng& rng);

  const std::vector<ChannelId>& visible() const { return visible_; }

 private:
  std::vector<ChannelId> visible_{kDefaultChannel};
  std::optional<ZipfianGenerator> popularity_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHANNELS_CHANNEL_AFFINITY_H_
