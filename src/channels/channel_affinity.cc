#include "src/channels/channel_affinity.h"

#include <algorithm>

namespace fabricsim {

ChannelAffinity::ChannelAffinity(const ChannelAffinityConfig& config,
                                 int num_channels, int client_index) {
  if (num_channels < 1) num_channels = 1;
  visible_.clear();
  if (config.pinned_channel >= 0) {
    // Explicit pin: one visible channel, zero randomness (clamped so a
    // pin beyond the deployment still lands on a real channel).
    ChannelId pinned = config.pinned_channel < num_channels
                           ? config.pinned_channel
                           : num_channels - 1;
    visible_.push_back(pinned);
    return;
  }
  int per_client = config.channels_per_client;
  if (per_client <= 0 || per_client >= num_channels) {
    for (ChannelId c = 0; c < num_channels; ++c) visible_.push_back(c);
  } else {
    int start = (client_index * per_client) % num_channels;
    for (int j = 0; j < per_client; ++j) {
      visible_.push_back(
          static_cast<ChannelId>((start + j) % num_channels));
    }
    // Ascending ids so Zipf rank 0 lands on the lowest visible channel.
    std::sort(visible_.begin(), visible_.end());
  }
  if (visible_.size() > 1) {
    double theta = config.skew < 0 ? 0 : config.skew;
    popularity_.emplace(visible_.size(), theta);
  }
}

ChannelId ChannelAffinity::Pick(Rng& rng) {
  if (visible_.size() == 1) return visible_[0];
  return visible_[popularity_->NextRank(rng)];
}

}  // namespace fabricsim
