#ifndef FABRICSIM_CHANNELS_CHANNEL_TYPES_H_
#define FABRICSIM_CHANNELS_CHANNEL_TYPES_H_

#include <cstdint>

#include "src/ledger/transaction.h"

namespace fabricsim {

/// The channel every single-channel deployment runs on, and the
/// namespace chaincode registrations fall back to when a channel has
/// no channel-specific installation.
constexpr ChannelId kDefaultChannel = 0;

/// How clients spread their transactions across channels. A real
/// Fabric network shards load by channel; popularity is rarely even —
/// one consortium's channel often carries most of the traffic while
/// side channels idle. `skew` is the Zipf theta over channel
/// popularity (0 = uniform; channel 0 is always the hottest rank), and
/// `channels_per_client` pins each client to a contiguous subset of
/// channels (0 = every client sees every channel), modelling clients
/// that are members of only some consortia.
struct ChannelAffinityConfig {
  double skew = 0.0;
  int channels_per_client = 0;
  /// Pins every client under this config to exactly this channel
  /// (scenario packs use it to aim one behaviour class at one
  /// channel's ledger). Negative = no pin; when set it overrides
  /// skew/channels_per_client and the chooser draws zero randomness.
  int pinned_channel = -1;
};

/// Cache key combining channel and per-channel block number. Block
/// numbers are dense per channel and realistic runs stay far below
/// 2^48 blocks, so the channel tag rides in the top bits; channel 0
/// maps to the bare block number (the pre-channel key layout).
inline uint64_t ChannelBlockKey(ChannelId channel, uint64_t block_number) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(channel)) << 48) |
         block_number;
}

}  // namespace fabricsim

#endif  // FABRICSIM_CHANNELS_CHANNEL_TYPES_H_
