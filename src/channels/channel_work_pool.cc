#include "src/channels/channel_work_pool.h"

#include <utility>

namespace fabricsim {

void ChannelWorkPool::Submit(Environment& env, ChannelId channel,
                             std::function<SimTime()> at_start,
                             std::function<void()> at_end) {
  EnsureChannel(channel);
  pending_.push_back(
      Task{env.now(), channel, std::move(at_start), std::move(at_end)});
  TryDispatch(env);
}

void ChannelWorkPool::TryDispatch(Environment& env) {
  while (in_service_ < static_cast<size_t>(workers_)) {
    // First pending task whose channel pipeline is idle; tasks of busy
    // channels keep their queue position (FIFO among eligible).
    auto it = pending_.begin();
    while (it != pending_.end() &&
           channel_busy_[static_cast<size_t>(it->channel)]) {
      ++it;
    }
    if (it == pending_.end()) return;
    Task task = std::move(*it);
    pending_.erase(it);
    size_t ch = static_cast<size_t>(task.channel);
    channel_busy_[ch] = 1;
    ++in_service_;
    double delay_ms = ToMillis(env.now() - task.submitted);
    queue_delay_stats_.Add(delay_ms);
    channel_delay_stats_[ch].Add(delay_ms);
    SimTime service = 0;
    if (task.at_start) service = task.at_start();
    if (service < 0) service = 0;
    total_service_ += service;
    channel_service_[ch] += service;
    env.Schedule(service, [this, &env, ch, at_end = std::move(task.at_end)]() {
      ++tasks_completed_;
      ++channel_completed_[ch];
      if (at_end) at_end();
      channel_busy_[ch] = 0;
      --in_service_;
      TryDispatch(env);
    });
  }
}

void ChannelWorkPool::EnsureChannel(ChannelId channel) {
  size_t need = static_cast<size_t>(channel) + 1;
  if (channel_busy_.size() >= need) return;
  channel_busy_.resize(need, 0);
  channel_service_.resize(need, 0);
  channel_completed_.resize(need, 0);
  channel_delay_stats_.resize(need);
}

SimTime ChannelWorkPool::channel_service(ChannelId channel) const {
  size_t ch = static_cast<size_t>(channel);
  return ch < channel_service_.size() ? channel_service_[ch] : 0;
}

uint64_t ChannelWorkPool::channel_tasks_completed(ChannelId channel) const {
  size_t ch = static_cast<size_t>(channel);
  return ch < channel_completed_.size() ? channel_completed_[ch] : 0;
}

const SummaryStats& ChannelWorkPool::channel_queue_delay_stats(
    ChannelId channel) const {
  static const SummaryStats kEmpty;
  size_t ch = static_cast<size_t>(channel);
  return ch < channel_delay_stats_.size() ? channel_delay_stats_[ch] : kEmpty;
}

}  // namespace fabricsim
