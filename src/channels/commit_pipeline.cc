#include "src/channels/commit_pipeline.h"

#include <utility>

#include "src/peer/committer.h"
#include "src/sim/executor.h"

namespace fabricsim {

CommitPipelines::CommitPipelines(Params params)
    : executor_(params.executor),
      validator_(std::move(params.policy)),
      lookahead_blocks_(params.lookahead_blocks) {
  int num_channels = params.num_channels < 1 ? 1 : params.num_channels;
  channels_.resize(static_cast<size_t>(num_channels));
  for (ChannelPipeline& ch : channels_) {
    ch.shadow = MakeStateDb(params.state_backend);
  }
}

CommitPipelines::~CommitPipelines() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  // Drop speculation the run never joined (e.g. blocks only crashed
  // peers would have consumed) and wait for in-flight workers: their
  // tasks capture `this`.
  for (ChannelPipeline& ch : channels_) ch.pending.clear();
  drained_cv_.wait(lock, [this] {
    for (const ChannelPipeline& ch : channels_) {
      if (ch.running) return false;
    }
    return true;
  });
}

Status CommitPipelines::Bootstrap(ChannelId channel,
                                  const std::vector<WriteItem>& writes) {
  return ApplyBootstrap(*channels_[static_cast<size_t>(channel)].shadow,
                        writes);
}

void CommitPipelines::OnBlockCut(std::shared_ptr<const Block> block) {
  size_t ch = static_cast<size_t>(block->channel);
  uint64_t key = ChannelBlockKey(block->channel, block->number);
  bool start_worker = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (lookahead_blocks_ > 0) {
      drained_cv_.wait(lock, [this, ch] {
        return channels_[ch].pending.size() <
               static_cast<size_t>(lookahead_blocks_);
      });
    }
    slots_.emplace(key, Slot{});
    channels_[ch].pending.push_back(std::move(block));
    if (!channels_[ch].running) {
      channels_[ch].running = true;
      start_worker = true;
    }
  }
  if (start_worker) {
    executor_->Async([this, ch] { RunChannel(ch); });
  }
}

void CommitPipelines::RunChannel(size_t channel) {
  ChannelPipeline& ch = channels_[channel];
  for (;;) {
    std::shared_ptr<const Block> block;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (ch.pending.empty() || shutdown_) {
        ch.running = false;
        drained_cv_.notify_all();
        return;
      }
      block = ch.pending.front();
      ch.pending.pop_front();
      drained_cv_.notify_all();
    }
    // The shadow is owned by whichever task holds `running` — no lock
    // needed around the validation itself, which is the whole point.
    ValidationOutcome outcome =
        validator_.ValidateBlockParallel(*ch.shadow, *block, *executor_);
    CommitStateUpdates(*ch.shadow, outcome.state_updates);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = slots_.find(ChannelBlockKey(block->channel, block->number));
      if (it != slots_.end()) {
        it->second.outcome = std::move(outcome);
        it->second.ready = true;
      }
      ++blocks_validated_;
    }
    ready_cv_.notify_all();
  }
}

bool CommitPipelines::Has(ChannelId channel, uint64_t block_number) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.count(ChannelBlockKey(channel, block_number)) > 0;
}

ValidationOutcome CommitPipelines::Take(ChannelId channel,
                                        uint64_t block_number) {
  uint64_t key = ChannelBlockKey(channel, block_number);
  std::unique_lock<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it != slots_.end() && it->second.ready) {
    ++speculative_hits_;
  } else {
    ++stall_waits_;
    ready_cv_.wait(lock, [this, key, &it] {
      it = slots_.find(key);
      return it != slots_.end() && it->second.ready;
    });
  }
  ValidationOutcome outcome = std::move(it->second.outcome);
  slots_.erase(it);
  return outcome;
}

uint64_t CommitPipelines::blocks_validated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_validated_;
}

uint64_t CommitPipelines::speculative_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return speculative_hits_;
}

uint64_t CommitPipelines::stall_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_waits_;
}

}  // namespace fabricsim
