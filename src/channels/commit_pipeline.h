#ifndef FABRICSIM_CHANNELS_COMMIT_PIPELINE_H_
#define FABRICSIM_CHANNELS_COMMIT_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/channels/channel_types.h"
#include "src/ledger/block.h"
#include "src/peer/validator.h"
#include "src/policy/endorsement_policy.h"
#include "src/statedb/state_backend.h"
#include "src/statedb/state_database.h"

namespace fabricsim {

class Executor;

/// Speculative per-channel commit pipelines: the mechanism behind
/// ExecutionMode::kThreaded.
///
/// Validation is a pure function of (pre-block channel state, block
/// content), and a block's content is final the moment the ordering
/// service cuts it — in compat mode the cutter assembles it once, in
/// replicated mode on_block_cut only fires after quorum commit. The
/// shared endorsement queue and the orderer therefore form a
/// conservative-lookahead barrier: everything at or before the cut
/// stays on the (deterministic, single-threaded) event loop, while
/// everything after it — the per-block validation outcome — can be
/// computed ahead of the virtual clock on worker threads.
///
/// Each channel gets a pipeline: a shadow replica of the channel
/// state, bootstrapped identically to the peers', advanced by applying
/// each block's own outcome in cut order. OnBlockCut (main thread)
/// enqueues the block; a worker validates it against the shadow and
/// publishes the outcome; the peer's validation event joins it with
/// Take (main thread), blocking only when the worker has not caught up
/// yet. Event order, timestamps, and RNG draws are untouched, so a
/// threaded run is bitwise-identical to a serial one by construction.
class CommitPipelines {
 public:
  struct Params {
    /// Worker pool the pipelines (and the intra-block parallel
    /// validator) run on. Must outlive the pipelines.
    Executor* executor = nullptr;
    int num_channels = 1;
    EndorsementPolicy policy;
    /// Backend for the shadow replicas — same choice as the peers',
    /// so shadow validation costs what inline validation would.
    StateBackendType state_backend = StateBackendType::kOrderedMap;
    /// Max cut-but-unvalidated blocks buffered per channel before
    /// OnBlockCut waits for the worker; <= 0 = unbounded.
    int lookahead_blocks = 64;
  };

  explicit CommitPipelines(Params params);
  ~CommitPipelines();

  CommitPipelines(const CommitPipelines&) = delete;
  CommitPipelines& operator=(const CommitPipelines&) = delete;

  /// Seeds one channel's shadow state (must mirror the peers'
  /// bootstrap). Main thread, before the run.
  Status Bootstrap(ChannelId channel, const std::vector<WriteItem>& writes);

  /// Feeds a freshly cut block into its channel's pipeline. Main
  /// thread (from the on_block_cut hook). The block's content must be
  /// final — it is read concurrently by the worker.
  void OnBlockCut(std::shared_ptr<const Block> block);

  /// Whether this block was fed to the pipeline and its outcome has
  /// not been taken yet. Main thread; deterministic (both the feed
  /// and the take happen on the main thread, so the answer never
  /// depends on worker timing).
  bool Has(ChannelId channel, uint64_t block_number) const;

  /// Joins the outcome for a block previously fed via OnBlockCut,
  /// blocking until the worker publishes it. Main thread. Each
  /// outcome can be taken exactly once.
  ValidationOutcome Take(ChannelId channel, uint64_t block_number);

  /// Blocks validated by the worker threads so far.
  uint64_t blocks_validated() const;
  /// Take() calls that found the outcome already published — the
  /// speculation hit rate (misses mean the main loop waited).
  uint64_t speculative_hits() const;
  uint64_t stall_waits() const;

 private:
  struct ChannelPipeline {
    std::unique_ptr<StateDatabase> shadow;
    /// Cut blocks the worker has not validated yet, in cut order.
    std::deque<std::shared_ptr<const Block>> pending;
    /// True while a worker task owns this channel (at most one at a
    /// time; the running->idle edge under mu_ hands the shadow state
    /// to the next task).
    bool running = false;
  };

  struct Slot {
    bool ready = false;
    ValidationOutcome outcome;
  };

  void RunChannel(size_t channel);

  Executor* executor_;
  Validator validator_;
  int lookahead_blocks_;

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;    // Take waits for a publish
  std::condition_variable drained_cv_;  // OnBlockCut/dtor wait on workers
  std::vector<ChannelPipeline> channels_;
  /// Keyed by ChannelBlockKey(channel, number).
  std::unordered_map<uint64_t, Slot> slots_;
  bool shutdown_ = false;
  uint64_t blocks_validated_ = 0;
  uint64_t speculative_hits_ = 0;
  uint64_t stall_waits_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHANNELS_COMMIT_PIPELINE_H_
