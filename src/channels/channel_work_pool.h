#ifndef FABRICSIM_CHANNELS_CHANNEL_WORK_POOL_H_
#define FABRICSIM_CHANNELS_CHANNEL_WORK_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/channels/channel_types.h"
#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/sim/environment.h"

namespace fabricsim {

/// The shared validation resource a peer runs its per-channel commit
/// pipelines on. Fabric validates and commits blocks of one channel
/// strictly in order, but different channels' blocks may validate
/// concurrently up to the peer's commit-worker budget — channels share
/// the machine, not the pipeline. The pool models exactly that:
///
///  * at most `workers` tasks are in service at once (the shared
///    resource — commit goroutines / CPU of one peer process);
///  * at most one task *per channel* is in service (each channel's
///    ledger is a serial pipeline);
///  * among eligible tasks, strict FIFO by submission order — a hot
///    channel that keeps the queue full delays a cold channel's lone
///    block behind its backlog, which is where cross-channel
///    interference comes from.
///
/// Task phases match WorkQueue: `at_start` runs synchronously when a
/// worker picks the task up and returns the service time; `at_end`
/// runs when that time has elapsed. With a single channel the pool
/// degenerates to WorkQueue — same events, same timestamps, same
/// counter updates — which is what keeps 1-channel runs byte-identical
/// to the pre-channel pipeline.
class ChannelWorkPool {
 public:
  explicit ChannelWorkPool(std::string name = "work", int workers = 1)
      : name_(std::move(name)), workers_(workers < 1 ? 1 : workers) {}

  /// Enqueues a task for `channel`. Either callback may be empty.
  void Submit(Environment& env, ChannelId channel,
              std::function<SimTime()> at_start, std::function<void()> at_end);

  /// Number of tasks waiting or in service.
  size_t depth() const { return pending_.size() + in_service_; }

  bool busy() const { return in_service_ > 0; }

  int workers() const { return workers_; }

  size_t in_service() const { return in_service_; }

  /// Total service time consumed so far, across all channels.
  SimTime total_service() const { return total_service_; }

  /// Service time consumed by one channel's tasks.
  SimTime channel_service(ChannelId channel) const;

  uint64_t tasks_completed() const { return tasks_completed_; }

  uint64_t channel_tasks_completed(ChannelId channel) const;

  /// Distribution of queueing delays (submit -> start), milliseconds.
  const SummaryStats& queue_delay_stats() const { return queue_delay_stats_; }

  /// Queueing delays experienced by one channel's tasks.
  const SummaryStats& channel_queue_delay_stats(ChannelId channel) const;

  const std::string& name() const { return name_; }

 private:
  struct Task {
    SimTime submitted;
    ChannelId channel;
    std::function<SimTime()> at_start;
    std::function<void()> at_end;
  };

  /// Starts eligible tasks while workers are free. Called on submit
  /// and on every task completion.
  void TryDispatch(Environment& env);

  void EnsureChannel(ChannelId channel);

  std::string name_;
  int workers_;
  std::deque<Task> pending_;
  size_t in_service_ = 0;
  SimTime total_service_ = 0;
  uint64_t tasks_completed_ = 0;
  SummaryStats queue_delay_stats_;
  /// Indexed by channel; grown on first use.
  std::vector<char> channel_busy_;
  std::vector<SimTime> channel_service_;
  std::vector<uint64_t> channel_completed_;
  std::vector<SummaryStats> channel_delay_stats_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHANNELS_CHANNEL_WORK_POOL_H_
