#include "src/peer/committer.h"

namespace fabricsim {

Status CommitStateUpdates(
    StateDatabase& db,
    const std::vector<std::pair<WriteItem, Version>>& updates) {
  for (const auto& [write, version] : updates) {
    FABRICSIM_RETURN_NOT_OK(db.ApplyWrite(write, version));
  }
  return Status::OK();
}

Status ApplyBootstrap(StateDatabase& db,
                      const std::vector<WriteItem>& writes) {
  for (const WriteItem& write : writes) {
    FABRICSIM_RETURN_NOT_OK(db.ApplyWrite(write, kBootstrapVersion));
  }
  return Status::OK();
}

}  // namespace fabricsim
