#ifndef FABRICSIM_PEER_ENDORSER_H_
#define FABRICSIM_PEER_ENDORSER_H_

#include "src/chaincode/chaincode.h"
#include "src/common/status.h"
#include "src/ledger/rwset.h"
#include "src/statedb/state_database.h"

namespace fabricsim {

/// Result of simulating a proposal on one endorsing peer.
struct EndorsementResult {
  /// The generated read/write set (meaningful when app_status is OK).
  ReadWriteSet rwset;
  /// Chaincode-level outcome. A non-OK status means the endorser
  /// returns an error response and the client will drop the
  /// transaction — this is an application failure, not one of the
  /// paper's three concurrency failure classes.
  Status app_status;
};

/// Executes the chaincode against the endorser's world-state view,
/// producing the read/write set (transaction flow step 2). Pure
/// data-plane: the caller charges the database/signing costs.
EndorsementResult SimulateProposal(const StateDatabase& view,
                                   Chaincode& chaincode,
                                   const Invocation& invocation,
                                   bool rich_queries_supported);

}  // namespace fabricsim

#endif  // FABRICSIM_PEER_ENDORSER_H_
