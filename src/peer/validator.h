#ifndef FABRICSIM_PEER_VALIDATOR_H_
#define FABRICSIM_PEER_VALIDATOR_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ledger/block.h"
#include "src/policy/endorsement_policy.h"
#include "src/statedb/state_database.h"

namespace fabricsim {

class Executor;  // src/sim/executor.h

/// Deterministic outcome of validating one block against a given
/// world state. Identical on every peer, since validation is a pure
/// function of (committed state, block content).
struct ValidationOutcome {
  /// One result per transaction, in block order.
  std::vector<TxValidationResult> results;
  /// Write set of the valid transactions, in order, each tagged with
  /// its commit version. Applying these to the state database
  /// finalizes the block.
  std::vector<std::pair<WriteItem, Version>> state_updates;
  /// Number of valid (committed) transactions.
  size_t valid_count = 0;
};

/// VSCC core check: true when the set of organizations whose
/// endorsements verify over the transaction's attached rw-set
/// satisfies the policy. Used by the validator and by FabricSharp's
/// orderer (which must know which transactions will actually commit).
bool EndorsementSatisfiesPolicy(const Transaction& tx,
                                const EndorsementPolicy& policy);

/// Implements the validation phase (transaction flow steps 6–7):
/// VSCC endorsement-policy check, MVCC read-set check with
/// intra/inter-block classification, and phantom-read re-scans for
/// range queries.
class Validator {
 public:
  explicit Validator(EndorsementPolicy policy);

  /// Validates `block` against `db` (the state as of the previous
  /// block). Writes of earlier valid transactions in the same block
  /// are visible to later MVCC checks, exactly as in Fabric's
  /// committer — that visibility is what creates intra-block
  /// conflicts.
  ValidationOutcome ValidateBlock(const StateDatabase& db,
                                  const Block& block) const;

  /// ValidateBlock with the per-transaction checks fanned out over
  /// `executor`'s worker pool. Returns an outcome identical to
  /// ValidateBlock in every field: phase 1 prechecks each transaction
  /// in parallel against the pre-block snapshot only (VSCC + point
  /// MVCC reads — pure const lookups on every backend), and phase 2
  /// replays the serial overlay walk, reusing a precheck only when no
  /// overlay entry could have influenced it. Transactions with
  /// phantom-checked range queries always take the serial path (range
  /// scans may build backend-internal lazy indexes and are not safe
  /// to run concurrently).
  ValidationOutcome ValidateBlockParallel(const StateDatabase& db,
                                          const Block& block,
                                          Executor& executor) const;

  const EndorsementPolicy& policy() const { return policy_; }

 private:
  /// State of one key inside the block-local overlay.
  struct OverlayEntry {
    Version version;
    bool deleted = false;
    uint32_t writer_index = 0;  // tx index within the block
  };
  using Overlay = std::unordered_map<std::string, OverlayEntry>;

  TxValidationResult ValidateTx(const StateDatabase& db,
                                const Overlay& overlay, const Block& block,
                                const Transaction& tx) const;
  bool CheckVscc(const Transaction& tx) const;

  EndorsementPolicy policy_;
};

/// Memoizes per-block validation outcomes across replicas. Validation
/// is a pure function of (pre-block state, block content), and every
/// peer processes the same blocks in the same order from the same
/// bootstrap, so all replicas compute identical outcomes. The
/// simulation therefore computes each block once and shares the
/// result — purely a simulator-performance optimization: the timing
/// model still charges every peer its own (jittered) service time.
/// Entries are dropped once every consumer has fetched them.
class ValidationOutcomeCache {
 public:
  /// `consumers` = number of peers that will request each block.
  explicit ValidationOutcomeCache(int consumers) : consumers_(consumers) {}

  /// Returns the memoized outcome for `block_number`, invoking
  /// `compute` only on the first request.
  std::shared_ptr<const ValidationOutcome> GetOrCompute(
      uint64_t block_number,
      const std::function<ValidationOutcome()>& compute);

  size_t live_entries() const { return entries_.size(); }

 private:
  struct Entry {
    std::shared_ptr<const ValidationOutcome> outcome;
    int remaining;
  };
  int consumers_;
  std::unordered_map<uint64_t, Entry> entries_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_PEER_VALIDATOR_H_
