#include "src/peer/peer.h"

#include <algorithm>
#include <utility>

#include "src/obs/tracer.h"

namespace fabricsim {

Peer::Peer(Params params)
    : id_(params.id),
      org_(params.org),
      node_(params.node),
      env_(params.env),
      net_(params.net),
      chaincode_(params.chaincode),
      validator_(std::move(params.policy)),
      db_profile_(params.db_profile),
      timing_(params.timing),
      variant_(params.variant),
      validation_cost_factor_(params.validation_cost_factor),
      snapshot_interval_(params.snapshot_interval),
      virtual_block_group_(params.virtual_block_group == 0
                               ? 1
                               : params.virtual_block_group),
      rng_(std::move(params.rng)),
      validation_cache_(params.validation_cache),
      on_commit_(std::move(params.on_commit)),
      state_(MakeMemoryStateDb()),
      endorse_view_(state_.get()),
      endorse_queue_("endorse"),
      validate_queue_("validate") {
  if (variant_ == FabricVariant::kFabricSharp && snapshot_interval_ > 0) {
    // FabricSharp parallelizes execution and validation with block
    // snapshots: endorsers run against a separate, periodically
    // refreshed view, which lags behind the committed state.
    endorse_snapshot_ = MakeMemoryStateDb();
    endorse_view_ = endorse_snapshot_.get();
  }
}

Status Peer::Bootstrap(const std::vector<WriteItem>& writes) {
  FABRICSIM_RETURN_NOT_OK(ApplyBootstrap(*state_, writes));
  if (endorse_snapshot_ != nullptr) {
    FABRICSIM_RETURN_NOT_OK(ApplyBootstrap(*endorse_snapshot_, writes));
  }
  return Status::OK();
}

void Peer::HandleProposal(ProposalRequest request) {
  if (!alive_) {
    // The endorsing gRPC endpoint is down: the proposal vanishes and
    // the client only learns through its own timeout.
    ++proposals_dropped_;
    return;
  }
  auto result = std::make_shared<EndorsementResult>();
  auto executed = std::make_shared<bool>(false);
  auto req = std::make_shared<ProposalRequest>(std::move(request));
  endorse_queue_.Submit(
      *env_,
      [this, result, executed, req]() -> SimTime {
        if (!alive_) return 0;  // crashed while queued: abandon silently
        // Chaincode simulation against the endorsement view *as of
        // now* — the staleness of this view is the root of both
        // endorsement mismatches and MVCC conflicts.
        *result = SimulateProposal(*endorse_view_, *chaincode_,
                                   req->invocation,
                                   db_profile_.supports_rich_queries);
        *executed = true;
        SimTime service = timing_.proposal_overhead +
                          db_profile_.EndorseCost(result->rwset) +
                          timing_.endorsement_sign_cost;
        return static_cast<SimTime>(static_cast<double>(service) *
                                    JitterFactor());
      },
      [this, result, executed, req]() {
        if (!*executed || !alive_) {
          ++proposals_dropped_;
          return;
        }
        ProposalResponse response;
        response.tx_id = req->tx_id;
        response.app_ok = result->app_status.ok();
        response.app_error = result->app_status.message();
        response.rwset = std::move(result->rwset);
        response.endorsement = Endorsement{
            id_, org_, response.rwset.Digest(), /*signature_valid=*/true};
        req->reply(response);
      });
}

void Peer::HandleBlock(std::shared_ptr<const Block> block) {
  if (!alive_) {
    ++blocks_dropped_;
    return;
  }
  if (block->number < next_to_enqueue_) {
    return;  // late duplicate of a block already replayed during catch-up
  }
  reorder_buffer_[block->number] = std::move(block);
  TryProcessBuffered();
}

void Peer::Crash() {
  alive_ = false;
  // Process memory is lost, including blocks parked for reordering;
  // catch-up refetches them from the canonical chain (every delivered
  // block was recorded there at cut time).
  blocks_dropped_ += reorder_buffer_.size();
  reorder_buffer_.clear();
}

void Peer::Restart() {
  if (alive_) return;
  alive_ = true;
  CatchUp();
}

void Peer::CatchUp() {
  if (!block_fetcher_) return;
  // Replay every canonical block cut while we were down, oldest first,
  // through the normal validation pipeline (the replicated validation
  // work is real; the shared outcome cache still spares recomputation).
  // Blocks cut after the restart arrive through regular delivery and
  // find the chain already dense.
  while (std::shared_ptr<const Block> block =
             block_fetcher_(next_to_enqueue_)) {
    ++blocks_replayed_;
    reorder_buffer_[block->number] = std::move(block);
    TryProcessBuffered();
  }
}

void Peer::TryProcessBuffered() {
  while (true) {
    auto it = reorder_buffer_.find(next_to_enqueue_);
    if (it == reorder_buffer_.end()) return;
    std::shared_ptr<const Block> block = std::move(it->second);
    reorder_buffer_.erase(it);
    ++next_to_enqueue_;
    ProcessBlock(std::move(block));
  }
}

double Peer::JitterFactor() {
  double j = timing_.peer_service_jitter;
  if (j <= 0) return 1.0;
  return rng_.UniformRange(1.0 - j, 1.0 + j);
}

SimTime Peer::ValidationServiceTime(const Block& block,
                                    const ValidationOutcome& outcome,
                                    bool charge_fixed_costs) const {
  SimTime vscc = 0;
  SimTime mvcc = 0;
  for (size_t i = 0; i < block.txs.size(); ++i) {
    if (outcome.results[i].code == TxValidationCode::kAbortedByReordering) {
      continue;  // pre-aborted in ordering; committer skips it
    }
    const Transaction& tx = block.txs[i];
    vscc += validator_.policy().VsccParallelCost(tx.endorsements.size());
    mvcc += validator_.policy().VsccSerialCost() +
            db_profile_.ValidateCost(tx.rwset);
  }
  int parallelism = std::max(timing_.vscc_parallelism, 1);
  // Streamchain's pipelining/parallel validation speeds up the
  // CPU-bound checks; the storage costs are only reduced by the
  // storage medium (RAM disk), which the profile already reflects.
  SimTime service = static_cast<SimTime>(
      static_cast<double>(vscc / parallelism + mvcc) *
      validation_cost_factor_);
  service += static_cast<SimTime>(outcome.state_updates.size()) *
             db_profile_.commit_per_write;
  if (charge_fixed_costs) {
    // With a virtual block boundary, the state-DB batch and the ledger
    // fsync are paid once per group of streamed blocks.
    service += db_profile_.commit_base + timing_.ledger_append_cost;
  }
  return service;
}

void Peer::ProcessBlock(std::shared_ptr<const Block> block) {
  auto outcome = std::make_shared<std::shared_ptr<const ValidationOutcome>>();
  validate_queue_.Submit(
      *env_,
      [this, outcome, block]() -> SimTime {
        // All replicas compute identical outcomes (deterministic
        // validation over identical state); share the computation.
        if (validation_cache_ != nullptr) {
          *outcome = validation_cache_->GetOrCompute(
              block->number,
              [&] { return validator_.ValidateBlock(*state_, *block); });
        } else {
          *outcome = std::make_shared<const ValidationOutcome>(
              validator_.ValidateBlock(*state_, *block));
        }
        bool charge_fixed =
            virtual_block_group_ <= 1 ||
            block->number % virtual_block_group_ == 0;
        return static_cast<SimTime>(
            static_cast<double>(
                ValidationServiceTime(*block, **outcome, charge_fixed)) *
            JitterFactor());
      },
      [this, outcome, block]() {
        CommitStateUpdates(*state_, (*outcome)->state_updates);
        committed_height_ = block->number;
        // Extend the committed hash chain (pure observation: no RNG
        // draws, no scheduled events — disabled-subsystem runs stay
        // bitwise identical).
        uint64_t prev_chain = chain_records_.empty()
                                  ? kChainHashSeed
                                  : chain_records_.back().chain_hash;
        uint64_t content = BlockContentHash(*block, (*outcome)->results);
        chain_records_.push_back(PeerChainRecord{
            block->number, content, MixChainHash(prev_chain, content)});
        if (Tracer* tracer = env_->tracer()) {
          tracer->OnPeerCommit(id_, block->number, env_->now());
        }
        if (endorse_snapshot_ != nullptr) {
          // Refresh the endorsement snapshot at the next snapshot
          // boundary; application order across blocks is preserved by
          // keeping the apply time monotonic.
          SimTime lag = static_cast<SimTime>(rng_.UniformRange(
              0.0, static_cast<double>(snapshot_interval_)));
          SimTime apply_at =
              std::max(env_->now() + lag, last_snapshot_apply_);
          last_snapshot_apply_ = apply_at;
          auto shared = *outcome;
          env_->ScheduleAt(apply_at, [this, shared]() {
            CommitStateUpdates(*endorse_snapshot_, shared->state_updates);
          });
        }
        if (on_commit_) on_commit_(block->number, **outcome);
      });
}

}  // namespace fabricsim
