#include "src/peer/peer.h"

#include <algorithm>
#include <utility>

#include "src/channels/commit_pipeline.h"
#include "src/obs/tracer.h"

namespace fabricsim {

Peer::Peer(Params params)
    : id_(params.id),
      org_(params.org),
      node_(params.node),
      env_(params.env),
      net_(params.net),
      validator_(std::move(params.policy)),
      db_profile_(params.db_profile),
      timing_(params.timing),
      variant_(params.variant),
      validation_cost_factor_(params.validation_cost_factor),
      snapshot_interval_(params.snapshot_interval),
      virtual_block_group_(params.virtual_block_group == 0
                               ? 1
                               : params.virtual_block_group),
      rng_(std::move(params.rng)),
      validation_cache_(params.validation_cache),
      commit_pipelines_(params.commit_pipelines),
      on_commit_(std::move(params.on_commit)),
      endorse_queue_("endorse"),
      validate_pool_("validate",
                     std::max(params.timing.peer_commit_workers, 1)) {
  // An AdmissionConfig with nothing enabled is treated as absent, so
  // harnesses can plumb the config unconditionally.
  if (params.admission != nullptr && params.admission->enabled()) {
    admission_ = params.admission;
    admission_stats_ = params.admission_stats;
  }
  int num_channels = std::max(params.num_channels, 1);
  channels_.resize(static_cast<size_t>(num_channels));
  for (int c = 0; c < num_channels; ++c) {
    ChannelLedger& ch = channels_[static_cast<size_t>(c)];
    ch.state = MakeStateDb(params.state_backend);
    ch.endorse_view = ch.state.get();
    if (variant_ == FabricVariant::kFabricSharp && snapshot_interval_ > 0) {
      // FabricSharp parallelizes execution and validation with block
      // snapshots: endorsers run against a separate, periodically
      // refreshed view, which lags behind the committed state.
      ch.endorse_snapshot = MakeStateDb(params.state_backend);
      ch.endorse_view = ch.endorse_snapshot.get();
    }
    ch.chaincode =
        static_cast<size_t>(c) < params.channel_chaincodes.size() &&
                params.channel_chaincodes[static_cast<size_t>(c)] != nullptr
            ? params.channel_chaincodes[static_cast<size_t>(c)]
            : params.chaincode;
  }
}

Status Peer::Bootstrap(const std::vector<WriteItem>& writes) {
  return Bootstrap(kDefaultChannel, writes);
}

Status Peer::Bootstrap(ChannelId channel,
                       const std::vector<WriteItem>& writes) {
  ChannelLedger& ch = Channel(channel);
  FABRICSIM_RETURN_NOT_OK(ApplyBootstrap(*ch.state, writes));
  if (ch.endorse_snapshot != nullptr) {
    FABRICSIM_RETURN_NOT_OK(ApplyBootstrap(*ch.endorse_snapshot, writes));
  }
  return Status::OK();
}

void Peer::HandleProposal(ProposalRequest request) {
  if (!alive_) {
    // The endorsing gRPC endpoint is down: the proposal vanishes and
    // the client only learns through its own timeout.
    ++proposals_dropped_;
    return;
  }
  if (admission_ != nullptr) {
    HandleProposalAdmitted(std::move(request));
    return;
  }
  auto result = std::make_shared<EndorsementResult>();
  auto executed = std::make_shared<bool>(false);
  auto req = std::make_shared<ProposalRequest>(std::move(request));
  endorse_queue_.Submit(
      *env_,
      [this, result, executed, req]() -> SimTime {
        if (!alive_) return 0;  // crashed while queued: abandon silently
        ChannelLedger& ch = Channel(req->channel);
        // Chaincode simulation against the endorsement view *as of
        // now* — the staleness of this view is the root of both
        // endorsement mismatches and MVCC conflicts.
        *result = SimulateProposal(*ch.endorse_view, *ch.chaincode,
                                   req->invocation,
                                   db_profile_.supports_rich_queries);
        *executed = true;
        SimTime service = timing_.proposal_overhead +
                          db_profile_.EndorseCost(result->rwset) +
                          timing_.endorsement_sign_cost;
        return static_cast<SimTime>(static_cast<double>(service) *
                                    JitterFactor());
      },
      [this, result, executed, req]() {
        if (!*executed || !alive_) {
          ++proposals_dropped_;
          return;
        }
        ProposalResponse response;
        response.tx_id = req->tx_id;
        response.app_ok = result->app_status.ok();
        response.app_error = result->app_status.message();
        response.rwset = std::move(result->rwset);
        response.endorsement = Endorsement{
            id_, org_, response.rwset.Digest(), /*signature_valid=*/true};
        req->reply(response);
      });
}

void Peer::CancelProposal(TxId tx_id) {
  if (!alive_) return;
  for (const std::shared_ptr<PendingEndorse>& entry : admission_pending_) {
    if (entry->req.tx_id != tx_id || entry->cancelled) continue;
    entry->cancelled = true;
    if (admission_live_ > 0) --admission_live_;
    if (admission_stats_ != nullptr) ++admission_stats_->endorse_cancelled;
  }
}

void Peer::SendRejectReply(const ProposalRequest& request,
                           ProposalReject why) {
  ProposalResponse response;
  response.tx_id = request.tx_id;
  response.reject = why;
  // Identify the refusing org so the client can attribute the shed
  // (and so per-org counters line up with the reply stream).
  response.endorsement.peer_id = id_;
  response.endorsement.org_id = org_;
  request.reply(response);
}

void Peer::HandleProposalAdmitted(ProposalRequest request) {
  const AdmissionConfig& cfg = *admission_;
  const SimTime now = env_->now();
  // Depth = live proposals waiting or in service. Cancelled husks are
  // excluded: they drain at zero cost, so counting them would make the
  // bound shed real work to protect capacity that isn't actually
  // occupied (a positive feedback loop — every shed creates husks at
  // the sibling org, which would trigger more sheds there).
  const uint32_t depth = admission_live_ + (endorse_queue_.busy() ? 1u : 0u);
  if (admission_stats_ != nullptr) {
    admission_stats_->endorse_depth.Add(static_cast<double>(depth));
  }

  // Already-expired proposals are refused at the door: one queue slot
  // and a full chaincode simulation saved.
  if (request.deadline > 0 && now > request.deadline) {
    if (admission_stats_ != nullptr) {
      ++admission_stats_->deadline_expired_endorse;
    }
    SendRejectReply(request, ProposalReject::kExpired);
    return;
  }

  if (cfg.max_endorse_queue_depth > 0 &&
      depth >= cfg.max_endorse_queue_depth) {
    if (cfg.endorse_policy == AdmissionQueuePolicy::kRejectNew) {
      if (admission_stats_ != nullptr) admission_stats_->NoteShed(org_);
      SendRejectReply(request, ProposalReject::kShed);
      return;
    }
    if (cfg.endorse_policy == AdmissionQueuePolicy::kDropOldest) {
      // Cancelled husks at the front carry no load; discard them
      // before picking a victim so the eviction frees a live slot.
      while (!admission_pending_.empty() &&
             admission_pending_.front()->cancelled) {
        admission_pending_.pop_front();
      }
      if (!admission_pending_.empty()) {
        // Evict the proposal that has queued longest: it carries the
        // most endorsement staleness and is the likeliest MVCC
        // casualty. The victim stays in the serial queue as a
        // zero-cost husk; the client hears about the shed right away.
        std::shared_ptr<PendingEndorse> victim = admission_pending_.front();
        admission_pending_.pop_front();
        victim->cancelled = true;
        if (admission_live_ > 0) --admission_live_;
        if (admission_stats_ != nullptr) admission_stats_->NoteShed(org_);
        SendRejectReply(victim->req, ProposalReject::kShed);
      }
    }
  }

  auto entry = std::make_shared<PendingEndorse>();
  entry->req = std::move(request);
  entry->enqueue_time = now;
  admission_pending_.push_back(entry);
  ++admission_live_;
  endorse_queue_.Submit(
      *env_,
      [this, entry]() -> SimTime {
        if (!admission_pending_.empty() &&
            admission_pending_.front() == entry) {
          admission_pending_.pop_front();
        }
        if (!alive_) return 0;  // crashed while queued: abandon silently
        // Drop-oldest victim (already replied) or cancellation-
        // propagation husk (client long gone): zero-cost drain. Both
        // left the live count when they were marked.
        if (entry->cancelled) return 0;
        if (admission_live_ > 0) --admission_live_;
        const SimTime now = env_->now();
        const SimTime sojourn = now - entry->enqueue_time;
        if (admission_stats_ != nullptr) {
          admission_stats_->endorse_sojourn_ms.Add(ToMillis(sojourn));
        }
        if (entry->req.deadline > 0 && now > entry->req.deadline) {
          // Expired while queueing: refuse without simulating.
          entry->refusal = ProposalReject::kExpired;
          if (admission_stats_ != nullptr) {
            ++admission_stats_->deadline_expired_endorse;
          }
          return 0;
        }
        if (admission_->endorse_policy == AdmissionQueuePolicy::kCoDel &&
            codel_.ShouldDrop(sojourn, now, admission_->codel_target,
                              admission_->codel_interval)) {
          entry->refusal = ProposalReject::kShed;
          if (admission_stats_ != nullptr) admission_stats_->NoteShed(org_);
          return 0;
        }
        ChannelLedger& ch = Channel(entry->req.channel);
        entry->result = SimulateProposal(*ch.endorse_view, *ch.chaincode,
                                         entry->req.invocation,
                                         db_profile_.supports_rich_queries);
        entry->executed = true;
        SimTime service = timing_.proposal_overhead +
                          db_profile_.EndorseCost(entry->result.rwset) +
                          timing_.endorsement_sign_cost;
        return static_cast<SimTime>(static_cast<double>(service) *
                                    JitterFactor());
      },
      [this, entry]() {
        if (entry->cancelled) return;  // reply sent at eviction
        if (entry->refusal != ProposalReject::kNone) {
          if (!alive_) {
            ++proposals_dropped_;
            return;
          }
          SendRejectReply(entry->req, entry->refusal);
          return;
        }
        if (!entry->executed || !alive_) {
          ++proposals_dropped_;
          return;
        }
        ProposalResponse response;
        response.tx_id = entry->req.tx_id;
        response.app_ok = entry->result.app_status.ok();
        response.app_error = entry->result.app_status.message();
        response.rwset = std::move(entry->result.rwset);
        response.endorsement = Endorsement{
            id_, org_, response.rwset.Digest(), /*signature_valid=*/true};
        entry->req.reply(response);
      });
}

void Peer::HandleBlock(std::shared_ptr<const Block> block) {
  if (!alive_) {
    ++blocks_dropped_;
    return;
  }
  ChannelLedger& ch = Channel(block->channel);
  if (block->number < ch.next_to_enqueue) {
    return;  // late duplicate of a block already replayed during catch-up
  }
  ch.reorder_buffer[block->number] = std::move(block);
  TryProcessBuffered(ch);
}

void Peer::Crash() {
  alive_ = false;
  // Process memory is lost, including blocks parked for reordering —
  // on every channel the peer serves; catch-up refetches them from
  // the canonical chains (every delivered block was recorded there at
  // cut time).
  for (ChannelLedger& ch : channels_) {
    blocks_dropped_ += ch.reorder_buffer.size();
    ch.reorder_buffer.clear();
  }
  // Queued proposals die with the process; their husks drain through
  // the serial queue at zero cost (the at_start alive_ check), exactly
  // like the legacy crash path. No shed replies: a dead endpoint
  // cannot answer, the client learns via its own timeout.
  admission_pending_.clear();
  admission_live_ = 0;
}

void Peer::Restart() {
  if (alive_) return;
  alive_ = true;
  CatchUp();
}

void Peer::CatchUp() {
  if (!block_fetcher_) return;
  // Replay every canonical block cut while we were down — on every
  // channel, oldest first per channel — through the normal validation
  // pipeline (the replicated validation work is real; the shared
  // outcome cache still spares recomputation). Blocks cut after the
  // restart arrive through regular delivery and find each chain
  // already dense.
  for (size_t c = 0; c < channels_.size(); ++c) {
    ChannelLedger& ch = channels_[c];
    while (std::shared_ptr<const Block> block = block_fetcher_(
               static_cast<ChannelId>(c), ch.next_to_enqueue)) {
      ++blocks_replayed_;
      ch.reorder_buffer[block->number] = std::move(block);
      TryProcessBuffered(ch);
    }
  }
}

void Peer::TryProcessBuffered(ChannelLedger& ch) {
  while (true) {
    auto it = ch.reorder_buffer.find(ch.next_to_enqueue);
    if (it == ch.reorder_buffer.end()) return;
    std::shared_ptr<const Block> block = std::move(it->second);
    ch.reorder_buffer.erase(it);
    ++ch.next_to_enqueue;
    ProcessBlock(std::move(block));
  }
}

double Peer::JitterFactor() {
  double j = timing_.peer_service_jitter;
  if (j <= 0) return 1.0;
  return rng_.UniformRange(1.0 - j, 1.0 + j);
}

SimTime Peer::ValidationServiceTime(const Block& block,
                                    const ValidationOutcome& outcome,
                                    bool charge_fixed_costs) const {
  SimTime vscc = 0;
  SimTime mvcc = 0;
  for (size_t i = 0; i < block.txs.size(); ++i) {
    if (outcome.results[i].code == TxValidationCode::kAbortedByReordering) {
      continue;  // pre-aborted in ordering; committer skips it
    }
    const Transaction& tx = block.txs[i];
    vscc += validator_.policy().VsccParallelCost(tx.endorsements.size());
    mvcc += validator_.policy().VsccSerialCost() +
            db_profile_.ValidateCost(tx.rwset);
  }
  int parallelism = std::max(timing_.vscc_parallelism, 1);
  // Streamchain's pipelining/parallel validation speeds up the
  // CPU-bound checks; the storage costs are only reduced by the
  // storage medium (RAM disk), which the profile already reflects.
  SimTime service = static_cast<SimTime>(
      static_cast<double>(vscc / parallelism + mvcc) *
      validation_cost_factor_);
  service += static_cast<SimTime>(outcome.state_updates.size()) *
             db_profile_.commit_per_write;
  if (charge_fixed_costs) {
    // With a virtual block boundary, the state-DB batch and the ledger
    // fsync are paid once per group of streamed blocks.
    service += db_profile_.commit_base + timing_.ledger_append_cost;
  }
  return service;
}

void Peer::ProcessBlock(std::shared_ptr<const Block> block) {
  auto outcome = std::make_shared<std::shared_ptr<const ValidationOutcome>>();
  validate_pool_.Submit(
      *env_, block->channel,
      [this, outcome, block]() -> SimTime {
        ChannelLedger& ch = Channel(block->channel);
        // All replicas compute identical outcomes (deterministic
        // validation over identical state); share the computation.
        // The memo key carries the channel: block numbers are only
        // dense per channel. In threaded mode the first computation
        // joins the commit pipeline's speculative result instead of
        // validating inline — identical by the same purity argument,
        // since the pipeline's shadow state tracks ch.state exactly.
        auto compute = [&]() -> ValidationOutcome {
          if (commit_pipelines_ != nullptr &&
              commit_pipelines_->Has(block->channel, block->number)) {
            return commit_pipelines_->Take(block->channel, block->number);
          }
          return validator_.ValidateBlock(*ch.state, *block);
        };
        if (validation_cache_ != nullptr) {
          *outcome = validation_cache_->GetOrCompute(
              ChannelBlockKey(block->channel, block->number), compute);
        } else {
          *outcome = std::make_shared<const ValidationOutcome>(compute());
        }
        bool charge_fixed =
            virtual_block_group_ <= 1 ||
            block->number % virtual_block_group_ == 0;
        return static_cast<SimTime>(
            static_cast<double>(
                ValidationServiceTime(*block, **outcome, charge_fixed)) *
            JitterFactor());
      },
      [this, outcome, block]() {
        ChannelLedger& ch = Channel(block->channel);
        CommitStateUpdates(*ch.state, (*outcome)->state_updates);
        ch.committed_height = block->number;
        // Extend the committed hash chain (pure observation: no RNG
        // draws, no scheduled events — disabled-subsystem runs stay
        // bitwise identical).
        uint64_t prev_chain = ch.chain_records.empty()
                                  ? kChainHashSeed
                                  : ch.chain_records.back().chain_hash;
        uint64_t content = BlockContentHash(*block, (*outcome)->results);
        ch.chain_records.push_back(PeerChainRecord{
            block->number, content, MixChainHash(prev_chain, content)});
        if (Tracer* tracer = env_->tracer()) {
          tracer->OnPeerCommit(id_, block->channel, block->number,
                               env_->now());
        }
        if (ch.endorse_snapshot != nullptr) {
          // Refresh the endorsement snapshot at the next snapshot
          // boundary; application order across blocks is preserved by
          // keeping the apply time monotonic.
          SimTime lag = static_cast<SimTime>(rng_.UniformRange(
              0.0, static_cast<double>(snapshot_interval_)));
          SimTime apply_at =
              std::max(env_->now() + lag, ch.last_snapshot_apply);
          ch.last_snapshot_apply = apply_at;
          auto shared = *outcome;
          StateDatabase* snapshot = ch.endorse_snapshot.get();
          env_->ScheduleAt(apply_at, [snapshot, shared]() {
            CommitStateUpdates(*snapshot, shared->state_updates);
          });
        }
        if (on_commit_) {
          on_commit_(block->channel, block->number, **outcome);
        }
      });
}

}  // namespace fabricsim
