#ifndef FABRICSIM_PEER_PEER_H_
#define FABRICSIM_PEER_PEER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/chaincode/chaincode.h"
#include "src/common/rng.h"
#include "src/fabric/network_config.h"
#include "src/peer/committer.h"
#include "src/peer/endorser.h"
#include "src/peer/validator.h"
#include "src/sim/network.h"
#include "src/sim/work_queue.h"
#include "src/statedb/state_database.h"

namespace fabricsim {

/// A proposal sent from a client to an endorsing peer (flow step 1).
/// `reply` is invoked by the peer when the endorsement response is
/// ready; the closure the client installed routes it back over the
/// network.
struct ProposalRequest {
  TxId tx_id = 0;
  Invocation invocation;
  std::function<void(const struct ProposalResponse&)> reply;
};

/// The endorsement response (flow step 2).
struct ProposalResponse {
  TxId tx_id = 0;
  Endorsement endorsement;
  ReadWriteSet rwset;
  bool app_ok = true;
  std::string app_error;
};

/// A peer node: endorser + validator + committer over its own
/// world-state replica. Two serial work queues model the two
/// independent execution resources of a real peer:
///  * the chaincode/endorsement path (chaincode container + endorser
///    gRPC handlers), and
///  * the validation/commit pipeline (VSCC, MVCC, state DB commit),
///    which processes blocks strictly in order.
class Peer {
 public:
  struct Params {
    PeerId id = 0;
    OrgId org = 0;
    NodeId node = 0;
    Environment* env = nullptr;
    Network* net = nullptr;
    Chaincode* chaincode = nullptr;
    EndorsementPolicy policy;
    DbLatencyProfile db_profile;
    TimingConfig timing;
    FabricVariant variant = FabricVariant::kFabric14;
    /// Multiplier on validation service time (<1 for Streamchain's
    /// pipelined/parallel validation).
    double validation_cost_factor = 1.0;
    /// FabricSharp: endorsement snapshot refresh interval.
    SimTime snapshot_interval = 0;
    /// Streamchain virtual block boundary: per-block fixed commit
    /// costs (state-DB batch, ledger fsync) are charged once per this
    /// many blocks (group commit). 1 = every block.
    uint32_t virtual_block_group = 1;
    Rng rng{1, 1};
    /// Shared validation-outcome memo (see ValidationOutcomeCache).
    /// Optional; nullptr makes every peer validate independently.
    ValidationOutcomeCache* validation_cache = nullptr;
    /// Invoked when a block finishes committing on this peer (used by
    /// the reference peer to record the canonical ledger).
    std::function<void(uint64_t block_number,
                       const ValidationOutcome& outcome)>
        on_commit;
  };

  explicit Peer(Params params);

  /// Populates the world state before the run (version (0,0)).
  Status Bootstrap(const std::vector<WriteItem>& writes);

  /// Handles an endorsement proposal (already delivered through the
  /// network). Queues chaincode execution on the endorsement queue.
  void HandleProposal(ProposalRequest request);

  /// Handles a block delivered by the ordering service. Blocks may
  /// arrive out of order; the peer buffers and validates sequentially.
  void HandleBlock(std::shared_ptr<const Block> block);

  /// Source of canonical blocks by number for crash recovery, wired by
  /// the harness. Returns nullptr when no block with that number has
  /// been cut yet.
  using BlockFetcher = std::function<std::shared_ptr<const Block>(uint64_t)>;
  void set_block_fetcher(BlockFetcher fetcher) {
    block_fetcher_ = std::move(fetcher);
  }

  /// Crash-stop: the peer stops accepting work — proposals and block
  /// deliveries that arrive while down are dropped on the floor, and
  /// queued endorsements are abandoned without a reply. Work already
  /// inside the validation pipeline still drains (journal recovery
  /// replays it on restart; modelling that replay separately is below
  /// the simulator's resolution), so committed state stays consistent.
  void Crash();

  /// Brings a crashed peer back and catches it up: every canonical
  /// block it missed is fetched via the block fetcher and replayed, in
  /// order, through the normal validation pipeline.
  void Restart();

  bool alive() const { return alive_; }

  PeerId id() const { return id_; }
  OrgId org() const { return org_; }
  NodeId node() const { return node_; }

  /// Committed world state (validation view).
  const StateDatabase& state() const { return *state_; }

  /// World state the endorser executes against. Same object as
  /// state() except under FabricSharp's snapshot model.
  const StateDatabase& endorse_view() const { return *endorse_view_; }

  uint64_t committed_height() const { return committed_height_; }

  const WorkQueue& endorse_queue() const { return endorse_queue_; }
  const WorkQueue& validate_queue() const { return validate_queue_; }

  /// The peer's committed hash chain, one record per committed block,
  /// audited after every run by the chain-integrity invariant checker.
  const std::vector<PeerChainRecord>& chain_records() const {
    return chain_records_;
  }

  /// Proposals lost because the peer was down (never answered).
  uint64_t proposals_dropped() const { return proposals_dropped_; }
  /// Block deliveries lost because the peer was down.
  uint64_t blocks_dropped() const { return blocks_dropped_; }
  /// Blocks replayed from the canonical chain during restarts.
  uint64_t blocks_replayed() const { return blocks_replayed_; }

 private:
  void CatchUp();
  void TryProcessBuffered();
  void ProcessBlock(std::shared_ptr<const Block> block);
  SimTime ValidationServiceTime(const Block& block,
                                const ValidationOutcome& outcome,
                                bool charge_fixed_costs) const;
  /// Samples this peer's service-time jitter factor.
  double JitterFactor();

  PeerId id_;
  OrgId org_;
  NodeId node_;
  Environment* env_;
  Network* net_;
  Chaincode* chaincode_;
  Validator validator_;
  DbLatencyProfile db_profile_;
  TimingConfig timing_;
  FabricVariant variant_;
  double validation_cost_factor_;
  SimTime snapshot_interval_;
  uint32_t virtual_block_group_;
  Rng rng_;
  ValidationOutcomeCache* validation_cache_;
  std::function<void(uint64_t, const ValidationOutcome&)> on_commit_;

  std::unique_ptr<StateDatabase> state_;
  std::unique_ptr<StateDatabase> endorse_snapshot_;  // FabricSharp only
  StateDatabase* endorse_view_;

  WorkQueue endorse_queue_;
  WorkQueue validate_queue_;

  uint64_t committed_height_ = 0;
  uint64_t next_to_enqueue_ = 1;
  std::vector<PeerChainRecord> chain_records_;
  std::map<uint64_t, std::shared_ptr<const Block>> reorder_buffer_;
  SimTime last_snapshot_apply_ = 0;

  bool alive_ = true;
  BlockFetcher block_fetcher_;
  uint64_t proposals_dropped_ = 0;
  uint64_t blocks_dropped_ = 0;
  uint64_t blocks_replayed_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_PEER_PEER_H_
