#ifndef FABRICSIM_PEER_PEER_H_
#define FABRICSIM_PEER_PEER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/admission/admission.h"
#include "src/chaincode/chaincode.h"
#include "src/channels/channel_types.h"
#include "src/channels/channel_work_pool.h"
#include "src/common/rng.h"
#include "src/fabric/network_config.h"
#include "src/peer/committer.h"
#include "src/peer/endorser.h"
#include "src/peer/validator.h"
#include "src/sim/network.h"
#include "src/sim/work_queue.h"
#include "src/statedb/state_database.h"

namespace fabricsim {

class CommitPipelines;  // src/channels/commit_pipeline.h

/// A proposal sent from a client to an endorsing peer (flow step 1).
/// `reply` is invoked by the peer when the endorsement response is
/// ready; the closure the client installed routes it back over the
/// network.
struct ProposalRequest {
  TxId tx_id = 0;
  ChannelId channel = 0;
  Invocation invocation;
  /// Client deadline carried with the proposal (overload protection);
  /// 0 = none.
  SimTime deadline = 0;
  std::function<void(const struct ProposalResponse&)> reply;
};

/// Why an endorser refused to execute a proposal (overload protection
/// only; kNone on the legacy path).
enum class ProposalReject : uint8_t {
  kNone = 0,
  /// Shed by the bounded admission queue (reject-new / drop-oldest /
  /// CoDel).
  kShed,
  /// The proposal's deadline had already passed.
  kExpired,
};

/// The endorsement response (flow step 2).
struct ProposalResponse {
  TxId tx_id = 0;
  Endorsement endorsement;
  ReadWriteSet rwset;
  bool app_ok = true;
  std::string app_error;
  /// Set when the endorser refused the proposal instead of executing
  /// it; endorsement/rwset are empty in that case.
  ProposalReject reject = ProposalReject::kNone;
};

/// A peer node: endorser + validator + committer over its own
/// world-state replicas, one replica per channel the peer serves.
/// Two execution resources model a real peer process:
///  * the chaincode/endorsement path (chaincode container + endorser
///    gRPC handlers), shared by every channel — a serial queue; and
///  * the validation/commit resource (VSCC, MVCC, state DB commit): a
///    ChannelWorkPool with `timing.peer_commit_workers` workers.
///    Each channel's blocks validate strictly in order, but different
///    channels' blocks may occupy different workers concurrently —
///    channel-parallel commit speedup and cross-channel queueing
///    interference both fall out of this pool.
class Peer {
 public:
  struct Params {
    PeerId id = 0;
    OrgId org = 0;
    NodeId node = 0;
    Environment* env = nullptr;
    Network* net = nullptr;
    /// Channels this peer serves (ids 0..num_channels-1), each with
    /// its own state replica, chain, and commit pipeline.
    int num_channels = 1;
    /// Chaincode every channel falls back to.
    Chaincode* chaincode = nullptr;
    /// Optional per-channel chaincode overrides, indexed by channel;
    /// a null (or missing) entry falls back to `chaincode`.
    std::vector<Chaincode*> channel_chaincodes;
    EndorsementPolicy policy;
    DbLatencyProfile db_profile;
    /// Backend for this peer's per-channel state replicas and
    /// endorsement snapshots (bit-identical behaviour across choices).
    StateBackendType state_backend = StateBackendType::kOrderedMap;
    TimingConfig timing;
    FabricVariant variant = FabricVariant::kFabric14;
    /// Multiplier on validation service time (<1 for Streamchain's
    /// pipelined/parallel validation).
    double validation_cost_factor = 1.0;
    /// FabricSharp: endorsement snapshot refresh interval.
    SimTime snapshot_interval = 0;
    /// Streamchain virtual block boundary: per-block fixed commit
    /// costs (state-DB batch, ledger fsync) are charged once per this
    /// many blocks (group commit). 1 = every block.
    uint32_t virtual_block_group = 1;
    Rng rng{1, 1};
    /// Shared validation-outcome memo (see ValidationOutcomeCache).
    /// Optional; nullptr makes every peer validate independently.
    ValidationOutcomeCache* validation_cache = nullptr;
    /// Speculative per-channel validation pipelines (threaded
    /// execution mode). Optional; when set, the first peer to need a
    /// block's outcome joins the precomputed result instead of
    /// validating inline. nullptr = serial reference behaviour.
    CommitPipelines* commit_pipelines = nullptr;
    /// Invoked when a block finishes committing on this peer (used by
    /// the reference peer to record the canonical ledger).
    std::function<void(ChannelId channel, uint64_t block_number,
                       const ValidationOutcome& outcome)>
        on_commit;
    /// Overload protection (src/admission). Null = legacy unbounded
    /// endorsement queue, byte-identical to the pre-admission peer.
    const AdmissionConfig* admission = nullptr;
    AdmissionStats* admission_stats = nullptr;
  };

  explicit Peer(Params params);

  /// Populates the default channel's world state before the run
  /// (version (0,0)).
  Status Bootstrap(const std::vector<WriteItem>& writes);

  /// Populates one channel's world state before the run.
  Status Bootstrap(ChannelId channel, const std::vector<WriteItem>& writes);

  /// Handles an endorsement proposal (already delivered through the
  /// network). Queues chaincode execution on the endorsement queue.
  void HandleProposal(ProposalRequest request);

  /// Cancellation propagation (admission path only): the client
  /// abandoned this transaction — another org shed or expired it — so
  /// any sibling proposal still queued here becomes a zero-cost husk
  /// instead of burning a full chaincode simulation on a transaction
  /// that can no longer commit. No reply is sent; the client is gone.
  void CancelProposal(TxId tx_id);

  /// Handles a block delivered by the ordering service. Blocks may
  /// arrive out of order; the peer buffers and validates each
  /// channel's chain sequentially.
  void HandleBlock(std::shared_ptr<const Block> block);

  /// Source of canonical blocks by (channel, number) for crash
  /// recovery, wired by the harness. Returns nullptr when no block
  /// with that number has been cut on that channel yet.
  using BlockFetcher =
      std::function<std::shared_ptr<const Block>(ChannelId, uint64_t)>;
  void set_block_fetcher(BlockFetcher fetcher) {
    block_fetcher_ = std::move(fetcher);
  }

  /// Crash-stop: the peer stops accepting work — proposals and block
  /// deliveries that arrive while down are dropped on the floor, and
  /// queued endorsements are abandoned without a reply. Work already
  /// inside the validation pipeline still drains (journal recovery
  /// replays it on restart; modelling that replay separately is below
  /// the simulator's resolution), so committed state stays consistent.
  /// The whole process crashes: every channel the peer serves is down.
  void Crash();

  /// Brings a crashed peer back and catches it up: every canonical
  /// block it missed — on every channel — is fetched via the block
  /// fetcher and replayed, in order, through the normal validation
  /// pipeline.
  void Restart();

  bool alive() const { return alive_; }

  PeerId id() const { return id_; }
  OrgId org() const { return org_; }
  NodeId node() const { return node_; }

  int num_channels() const { return static_cast<int>(channels_.size()); }

  /// Committed world state of the default channel (validation view).
  const StateDatabase& state() const { return *channels_[0].state; }
  const StateDatabase& state(ChannelId channel) const {
    return *channels_[static_cast<size_t>(channel)].state;
  }

  /// World state the endorser executes against. Same object as
  /// state() except under FabricSharp's snapshot model.
  const StateDatabase& endorse_view() const {
    return *channels_[0].endorse_view;
  }
  const StateDatabase& endorse_view(ChannelId channel) const {
    return *channels_[static_cast<size_t>(channel)].endorse_view;
  }

  uint64_t committed_height() const { return channels_[0].committed_height; }
  uint64_t committed_height(ChannelId channel) const {
    return channels_[static_cast<size_t>(channel)].committed_height;
  }

  const WorkQueue& endorse_queue() const { return endorse_queue_; }

  /// The shared validation/commit resource all channels contend on.
  const ChannelWorkPool& validate_queue() const { return validate_pool_; }

  /// The default channel's committed hash chain, one record per
  /// committed block, audited after every run by the chain-integrity
  /// invariant checker.
  const std::vector<PeerChainRecord>& chain_records() const {
    return channels_[0].chain_records;
  }
  const std::vector<PeerChainRecord>& chain_records(ChannelId channel) const {
    return channels_[static_cast<size_t>(channel)].chain_records;
  }

  /// Proposals lost because the peer was down (never answered).
  uint64_t proposals_dropped() const { return proposals_dropped_; }
  /// Block deliveries lost because the peer was down.
  uint64_t blocks_dropped() const { return blocks_dropped_; }
  /// Blocks replayed from the canonical chains during restarts.
  uint64_t blocks_replayed() const { return blocks_replayed_; }

 private:
  /// Everything a peer keeps per channel: its replica of that
  /// channel's world state, the endorsement view, and the commit
  /// pipeline's in-order bookkeeping.
  struct ChannelLedger {
    std::unique_ptr<StateDatabase> state;
    std::unique_ptr<StateDatabase> endorse_snapshot;  // FabricSharp only
    StateDatabase* endorse_view = nullptr;
    Chaincode* chaincode = nullptr;
    uint64_t committed_height = 0;
    uint64_t next_to_enqueue = 1;
    std::vector<PeerChainRecord> chain_records;
    std::map<uint64_t, std::shared_ptr<const Block>> reorder_buffer;
    SimTime last_snapshot_apply = 0;
  };

  /// One proposal tracked by the admission machinery while it queues.
  struct PendingEndorse {
    ProposalRequest req;
    SimTime enqueue_time = 0;
    /// Evicted by drop-oldest before reaching the server; the shed
    /// reply was already sent at eviction time.
    bool cancelled = false;
    /// Refused at dequeue (deadline / CoDel); reply sent at drain.
    ProposalReject refusal = ProposalReject::kNone;
    bool executed = false;
    EndorsementResult result;
  };

  /// HandleProposal body when an AdmissionConfig is active.
  void HandleProposalAdmitted(ProposalRequest request);
  /// Sends the refusal response back to the client (same reply path as
  /// a served endorsement, so it costs one network hop).
  void SendRejectReply(const ProposalRequest& request, ProposalReject why);

  void CatchUp();
  void TryProcessBuffered(ChannelLedger& ch);
  void ProcessBlock(std::shared_ptr<const Block> block);
  SimTime ValidationServiceTime(const Block& block,
                                const ValidationOutcome& outcome,
                                bool charge_fixed_costs) const;
  /// Samples this peer's service-time jitter factor.
  double JitterFactor();

  ChannelLedger& Channel(ChannelId channel) {
    return channels_[static_cast<size_t>(channel)];
  }

  PeerId id_;
  OrgId org_;
  NodeId node_;
  Environment* env_;
  Network* net_;
  Validator validator_;
  DbLatencyProfile db_profile_;
  TimingConfig timing_;
  FabricVariant variant_;
  double validation_cost_factor_;
  SimTime snapshot_interval_;
  uint32_t virtual_block_group_;
  Rng rng_;
  ValidationOutcomeCache* validation_cache_;
  CommitPipelines* commit_pipelines_;
  std::function<void(ChannelId, uint64_t, const ValidationOutcome&)>
      on_commit_;

  std::vector<ChannelLedger> channels_;

  WorkQueue endorse_queue_;
  ChannelWorkPool validate_pool_;

  /// Overload protection (null/unused on the legacy path).
  const AdmissionConfig* admission_ = nullptr;
  AdmissionStats* admission_stats_ = nullptr;
  CoDelState codel_;
  /// Proposals admitted but not yet started, oldest first — the
  /// drop-oldest eviction candidates. Entries leave from the front as
  /// the serial queue starts them.
  std::deque<std::shared_ptr<PendingEndorse>> admission_pending_;
  /// Non-cancelled entries of admission_pending_ (cancelled husks cost
  /// nothing to drain, so admission bounds must not count them).
  uint32_t admission_live_ = 0;

  bool alive_ = true;
  BlockFetcher block_fetcher_;
  uint64_t proposals_dropped_ = 0;
  uint64_t blocks_dropped_ = 0;
  uint64_t blocks_replayed_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_PEER_PEER_H_
