#include "src/peer/validator.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/sim/executor.h"

namespace fabricsim {

Validator::Validator(EndorsementPolicy policy) : policy_(std::move(policy)) {}

bool EndorsementSatisfiesPolicy(const Transaction& tx,
                                const EndorsementPolicy& policy) {
  // Only endorsements whose signature verifies *over the rw-set the
  // client attached* count towards the policy. Endorsers that
  // simulated on a divergent world state produced a different rw-set,
  // so their signatures do not match the payload — the mechanism of
  // the paper's endorsement policy failure (Eq. 1).
  uint64_t attached_digest = tx.rwset.Digest();
  std::set<OrgId> matching_orgs;
  for (const Endorsement& e : tx.endorsements) {
    if (e.signature_valid && e.rwset_digest == attached_digest) {
      matching_orgs.insert(e.org_id);
    }
  }
  return policy.Evaluate(matching_orgs);
}

bool Validator::CheckVscc(const Transaction& tx) const {
  return EndorsementSatisfiesPolicy(tx, policy_);
}

TxValidationResult Validator::ValidateTx(const StateDatabase& db,
                                         const Overlay& overlay,
                                         const Block& block,
                                         const Transaction& tx) const {
  TxValidationResult result;

  // --- Deadline (overload protection) --------------------------------
  // A pure function of block content (deadline vs the block's cut
  // time, never a per-peer clock), so every replica, the shared
  // outcome cache and the threaded precheck all agree — and the
  // VSCC/MVCC work below is skipped for a transaction nobody awaits.
  if (tx.deadline > 0 && block.cut_time > tx.deadline) {
    result.code = TxValidationCode::kDeadlineExpiredCommit;
    return result;
  }

  // --- VSCC: endorsement policy --------------------------------------
  if (!CheckVscc(tx)) {
    result.code = TxValidationCode::kEndorsementPolicyFailure;
    return result;
  }

  // Resolves a key against overlay-then-db; returns (exists, version,
  // in_overlay, writer_index).
  struct Resolved {
    bool exists = false;
    Version version;
    bool from_overlay = false;
    uint32_t writer_index = 0;
  };
  auto resolve = [&](const std::string& key) {
    Resolved r;
    auto it = overlay.find(key);
    if (it != overlay.end()) {
      r.from_overlay = true;
      r.writer_index = it->second.writer_index;
      r.exists = !it->second.deleted;
      r.version = it->second.version;
      return r;
    }
    // Version-only lookup: MVCC compares versions, so copying the
    // value payload out of the store would be pure waste here.
    std::optional<Version> version = db.GetVersion(key);
    if (version.has_value()) {
      r.exists = true;
      r.version = *version;
    }
    return r;
  };

  auto fail_mvcc = [&](const ReadItem& read, const Resolved& current) {
    result.code = TxValidationCode::kMvccReadConflict;
    if (current.from_overlay) {
      result.mvcc_class = MvccClass::kIntraBlock;
      result.conflicting_tx = block.txs[current.writer_index].id;
    } else {
      result.mvcc_class = MvccClass::kInterBlock;
    }
    // Attribution evidence: which key, what the endorser read, what
    // validation found (the observed version names the invalidating
    // write).
    result.conflicting_key = read.key;
    result.read_found = read.found;
    if (read.found) result.read_version = read.version;
    result.observed_found = current.exists;
    if (current.exists) result.observed_version = current.version;
  };

  // --- MVCC: point reads (paper Eq. 2) --------------------------------
  for (const ReadItem& read : tx.rwset.reads) {
    Resolved current = resolve(read.key);
    if (read.found) {
      if (!current.exists || current.version != read.version) {
        fail_mvcc(read, current);
        return result;
      }
    } else if (current.exists) {
      // The endorser saw no key; now one exists.
      fail_mvcc(read, current);
      return result;
    }
  }

  // --- Phantom reads: re-execute range queries (paper Eq. 5) ----------
  for (const RangeQueryInfo& rq : tx.rwset.range_queries) {
    if (!rq.phantom_check) continue;  // rich queries are not re-checked
    // Merge the database range with the block-local overlay.
    std::map<std::string, Version> current_range;
    db.ForEachVersionInRange(
        rq.start_key, rq.end_key,
        [&current_range](const std::string& key, Version version) {
          current_range[key] = version;
        });
    bool overlay_dirty = false;
    for (const auto& [key, entry] : overlay) {
      if (!KeyInRange(key, rq.start_key, rq.end_key)) continue;
      if (entry.deleted) {
        overlay_dirty |= current_range.erase(key) > 0;
      } else {
        current_range[key] = entry.version;
        overlay_dirty = true;
      }
    }
    (void)overlay_dirty;
    bool mismatch = current_range.size() != rq.reads.size();
    if (!mismatch) {
      for (const ReadItem& read : rq.reads) {
        auto it = current_range.find(read.key);
        if (it == current_range.end() || it->second != read.version) {
          mismatch = true;
          break;
        }
      }
    }
    if (mismatch) {
      result.code = TxValidationCode::kPhantomReadConflict;
      // Attribution: the first endorser-read key that vanished or
      // changed version, else the first phantom key that appeared in
      // the interval (current_range is sorted, so this is
      // deterministic).
      for (const ReadItem& read : rq.reads) {
        auto it = current_range.find(read.key);
        if (it == current_range.end()) {
          result.conflicting_key = read.key;
          result.read_found = true;
          result.read_version = read.version;
          break;
        }
        if (it->second != read.version) {
          result.conflicting_key = read.key;
          result.read_found = true;
          result.read_version = read.version;
          result.observed_found = true;
          result.observed_version = it->second;
          break;
        }
      }
      if (result.conflicting_key.empty()) {
        std::set<std::string> endorsed_keys;
        for (const ReadItem& read : rq.reads) endorsed_keys.insert(read.key);
        for (const auto& [key, version] : current_range) {
          if (endorsed_keys.count(key) == 0) {
            result.conflicting_key = key;
            result.observed_found = true;
            result.observed_version = version;
            break;
          }
        }
      }
      return result;
    }
  }

  result.code = TxValidationCode::kValid;
  return result;
}

std::shared_ptr<const ValidationOutcome> ValidationOutcomeCache::GetOrCompute(
    uint64_t block_number, const std::function<ValidationOutcome()>& compute) {
  auto it = entries_.find(block_number);
  if (it == entries_.end()) {
    Entry entry;
    entry.outcome = std::make_shared<const ValidationOutcome>(compute());
    entry.remaining = consumers_;
    it = entries_.emplace(block_number, std::move(entry)).first;
  }
  std::shared_ptr<const ValidationOutcome> outcome = it->second.outcome;
  if (--it->second.remaining <= 0) entries_.erase(it);
  return outcome;
}

ValidationOutcome Validator::ValidateBlock(const StateDatabase& db,
                                           const Block& block) const {
  ValidationOutcome outcome;
  outcome.results.reserve(block.txs.size());
  Overlay overlay;

  for (uint32_t i = 0; i < block.txs.size(); ++i) {
    const Transaction& tx = block.txs[i];

    // Transactions pre-aborted by the ordering phase (Fabric++ cycle
    // removal) arrive flagged in the block metadata; the committer
    // skips them without VSCC/MVCC work.
    if (i < block.results.size() &&
        block.results[i].code == TxValidationCode::kAbortedByReordering) {
      outcome.results.push_back(block.results[i]);
      continue;
    }

    TxValidationResult result = ValidateTx(db, overlay, block, tx);
    if (result.code == TxValidationCode::kValid) {
      ++outcome.valid_count;
      Version version{block.number, i};
      for (const WriteItem& write : tx.rwset.writes) {
        overlay[write.key] = OverlayEntry{version, write.is_delete, i};
        outcome.state_updates.emplace_back(write, version);
      }
    }
    outcome.results.push_back(result);
  }
  return outcome;
}

ValidationOutcome Validator::ValidateBlockParallel(const StateDatabase& db,
                                                   const Block& block,
                                                   Executor& executor) const {
  const size_t n = block.txs.size();
  // Below this, fan-out overhead outweighs the checks themselves. Any
  // threshold yields the same outcome — this is wall-clock tuning.
  constexpr size_t kMinParallelTxs = 4;
  if (executor.threads() <= 1 || n < kMinParallelTxs) {
    return ValidateBlock(db, block);
  }

  // --- Phase 1: parallel prechecks against the pre-block snapshot ---
  // Each transaction is validated as if it were first in the block
  // (empty overlay). VSCC and point-read MVCC are pure const lookups,
  // so this is safe to run concurrently; transactions with
  // phantom-checked range queries are left to the serial phase
  // because range scans may build a backend-internal lazy index.
  struct Precheck {
    TxValidationResult result;
    bool usable = false;
  };
  std::vector<Precheck> pre(n);
  static const Overlay kEmptyOverlay;
  executor.ParallelFor(n, [&](size_t i) {
    if (i < block.results.size() &&
        block.results[i].code == TxValidationCode::kAbortedByReordering) {
      return;
    }
    const Transaction& tx = block.txs[i];
    for (const RangeQueryInfo& rq : tx.rwset.range_queries) {
      if (rq.phantom_check) return;
    }
    pre[i].result = ValidateTx(db, kEmptyOverlay, block, tx);
    pre[i].usable = true;
  });

  // --- Phase 2: serial overlay walk, identical to ValidateBlock ------
  // A precheck stands iff no key the transaction reads was written by
  // an earlier valid transaction of the same block; otherwise the
  // overlay could change the verdict (or the conflict attribution)
  // and the transaction is re-validated with the real overlay.
  ValidationOutcome outcome;
  outcome.results.reserve(n);
  Overlay overlay;

  auto reads_touch_overlay = [&overlay](const Transaction& tx) {
    if (overlay.empty()) return false;
    for (const ReadItem& read : tx.rwset.reads) {
      if (overlay.count(read.key) > 0) return true;
    }
    return false;
  };

  for (uint32_t i = 0; i < n; ++i) {
    const Transaction& tx = block.txs[i];
    if (i < block.results.size() &&
        block.results[i].code == TxValidationCode::kAbortedByReordering) {
      outcome.results.push_back(block.results[i]);
      continue;
    }
    TxValidationResult result;
    if (pre[i].usable && !reads_touch_overlay(tx)) {
      result = pre[i].result;
    } else {
      result = ValidateTx(db, overlay, block, tx);
    }
    if (result.code == TxValidationCode::kValid) {
      ++outcome.valid_count;
      Version version{block.number, i};
      for (const WriteItem& write : tx.rwset.writes) {
        overlay[write.key] = OverlayEntry{version, write.is_delete, i};
        outcome.state_updates.emplace_back(write, version);
      }
    }
    outcome.results.push_back(result);
  }
  return outcome;
}

}  // namespace fabricsim
