#include "src/peer/endorser.h"

#include "src/chaincode/stub.h"

namespace fabricsim {

EndorsementResult SimulateProposal(const StateDatabase& view,
                                   Chaincode& chaincode,
                                   const Invocation& invocation,
                                   bool rich_queries_supported) {
  EndorsementResult result;
  ChaincodeStub stub(view, rich_queries_supported);
  result.app_status = chaincode.Invoke(stub, invocation);
  result.rwset = stub.TakeRwset();
  return result;
}

}  // namespace fabricsim
