#ifndef FABRICSIM_PEER_COMMITTER_H_
#define FABRICSIM_PEER_COMMITTER_H_

#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/ledger/rwset.h"
#include "src/ledger/version.h"
#include "src/statedb/state_database.h"

namespace fabricsim {

/// Applies the write sets of a validated block to the world state
/// (transaction flow step 7). Updates are applied in block order, so
/// later writes to the same key win.
Status CommitStateUpdates(
    StateDatabase& db,
    const std::vector<std::pair<WriteItem, Version>>& updates);

/// Applies bootstrap writes at version (0,0) — the initial world-state
/// population each chaincode defines.
Status ApplyBootstrap(StateDatabase& db, const std::vector<WriteItem>& writes);

}  // namespace fabricsim

#endif  // FABRICSIM_PEER_COMMITTER_H_
