#ifndef FABRICSIM_LEDGER_TRANSACTION_H_
#define FABRICSIM_LEDGER_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/ledger/rwset.h"

namespace fabricsim {

using TxId = uint64_t;
using PeerId = int32_t;
using OrgId = int32_t;

/// Identifies one channel (an independent ledger shard multiplexed
/// over the shared peers and ordering service). Channel 0 is the
/// default channel every single-channel configuration runs on.
using ChannelId = int32_t;

/// Final status a transaction carries on the ledger. Mirrors Fabric's
/// validation codes, restricted to the ones the study analyses, plus
/// the early-abort codes introduced by the Fabric++/FabricSharp forks.
enum class TxValidationCode : uint8_t {
  /// Committed; the write set was applied to the world state.
  kValid = 0,
  /// VSCC rejected the transaction: no digest-consistent subset of
  /// endorsements satisfies the endorsement policy (paper §3.2.1).
  kEndorsementPolicyFailure,
  /// A read-set version no longer matches the world state (§3.2.2).
  kMvccReadConflict,
  /// A range query's interval changed between endorsement and
  /// validation (§3.2.3).
  kPhantomReadConflict,
  /// Fabric++ aborted the transaction in the ordering phase to break a
  /// conflict-graph cycle.
  kAbortedByReordering,
  /// FabricSharp aborted the transaction before ordering because it
  /// was not serializable against the dependency graph. Such
  /// transactions never reach the ledger.
  kAbortedNotSerializable,
  /// Sentinel for transactions not yet validated.
  kNotValidated,
  /// Overload protection (src/admission): the transaction's client
  /// deadline had already passed when an endorser reached it — it was
  /// shed at the endorsement queue and never proposed for ordering.
  kDeadlineExpiredEndorse,
  /// Deadline passed while the envelope queued at orderer ingress;
  /// dropped before block cutting, never on the ledger.
  kDeadlineExpiredOrder,
  /// Deadline had passed by the block's cut time: validators mark the
  /// transaction invalid without running VSCC/MVCC (the client has
  /// long stopped waiting). The only deadline class that appears on
  /// the ledger.
  kDeadlineExpiredCommit,
};

const char* TxValidationCodeToString(TxValidationCode code);

/// Sub-classification of an MVCC read conflict (paper Eq. 3 / Eq. 4).
enum class MvccClass : uint8_t {
  kNone = 0,
  /// Invalidating write is an earlier transaction in the same block.
  kIntraBlock,
  /// Invalidating write committed in an earlier block.
  kInterBlock,
};

/// One endorsement collected from a peer: who signed, over which
/// rw-set digest, and whether the signature verifies.
struct Endorsement {
  PeerId peer_id = -1;
  OrgId org_id = -1;
  uint64_t rwset_digest = 0;
  bool signature_valid = true;
};

/// A transaction envelope as submitted to the ordering service.
struct Transaction {
  TxId id = 0;
  /// Channel the transaction is submitted on; its rw-set is resolved
  /// against that channel's world state and it lands on that channel's
  /// chain. 0 on single-channel deployments.
  ChannelId channel = 0;
  std::string chaincode;
  std::string function;
  std::vector<std::string> args;

  /// The rw-set the client attached (taken from the endorsement
  /// majority group).
  ReadWriteSet rwset;
  std::vector<Endorsement> endorsements;

  /// True when the chaincode function performed no writes.
  bool read_only = false;

  /// Client-stamped absolute deadline (overload protection): past this
  /// simulated time the submitting client no longer cares about the
  /// outcome, so every pipeline stage may early-abort the transaction.
  /// 0 (the default) means no deadline.
  SimTime deadline = 0;

  /// Timestamps along the E-O-V pipeline, for latency metrics.
  SimTime client_submit_time = 0;   ///< proposal sent to endorsers
  SimTime endorsed_time = 0;        ///< all endorsements collected
  SimTime ordered_time = 0;         ///< placed into a block
  SimTime committed_time = 0;       ///< validated & logged at the peer

  /// Envelope payload size estimate (rw-set + endorsements).
  uint64_t ByteSize() const {
    return rwset.ByteSize() + 96 * endorsements.size() + 64;
  }
};

}  // namespace fabricsim

#endif  // FABRICSIM_LEDGER_TRANSACTION_H_
