#ifndef FABRICSIM_LEDGER_BLOCK_H_
#define FABRICSIM_LEDGER_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/ledger/transaction.h"

namespace fabricsim {

/// Why the block cutter emitted this block.
enum class BlockCutReason : uint8_t {
  kMaxCount,   ///< reached the configured block size (tx count)
  kTimeout,    ///< block timeout elapsed with pending transactions
  kMaxBytes,   ///< accumulated payload reached the byte limit
  kStreaming,  ///< Streamchain: every transaction is its own "block"
};

/// Per-transaction validation outcome stored in the block metadata,
/// mirroring Fabric's transaction filter bitmap (extended with the
/// MVCC sub-class, the id of the conflicting writer, and — for
/// MVCC/phantom conflicts — the concrete key/version evidence, so a
/// failed transaction can be attributed without re-running
/// validation).
struct TxValidationResult {
  TxValidationCode code = TxValidationCode::kNotValidated;
  MvccClass mvcc_class = MvccClass::kNone;
  /// Transaction that performed the invalidating write (0 if n/a).
  TxId conflicting_tx = 0;
  /// MVCC/phantom: the first key whose version check failed (empty for
  /// other failure classes).
  std::string conflicting_key;
  /// Version the endorser recorded for conflicting_key; read_found is
  /// false when the endorser read a key that did not exist.
  bool read_found = false;
  Version read_version;
  /// Version found at validation time; observed_found is false when
  /// the key had been deleted/never existed. Its (block_num, tx_num)
  /// name the invalidating write.
  bool observed_found = false;
  Version observed_version;
};

/// A block as delivered by the ordering service and annotated by the
/// validators. Both committed and aborted transactions stay in the
/// block, exactly as in Fabric: the ledger is the full history.
struct Block {
  uint64_t number = 0;
  /// Channel whose block cutter emitted this block. Block numbers are
  /// dense *per channel* (each channel is its own chain), so (channel,
  /// number) is the globally unique block identity. Deliberately not
  /// part of BlockContentHash: chains are audited per channel, and the
  /// single-channel hash stream must stay byte-identical.
  ChannelId channel = 0;
  SimTime cut_time = 0;
  BlockCutReason cut_reason = BlockCutReason::kMaxCount;
  std::vector<Transaction> txs;
  std::vector<TxValidationResult> results;

  uint64_t ByteSize() const {
    uint64_t bytes = 128;
    for (const Transaction& tx : txs) bytes += tx.ByteSize();
    return bytes;
  }
};

/// FNV offset basis — the hash of the empty chain (block 0's "previous
/// hash" in every peer's chain record sequence).
constexpr uint64_t kChainHashSeed = 14695981039346656037ull;

/// Content digest of a committed block: number, cut reason, each
/// transaction's identity/read-write set, and each validation verdict.
/// Deliberately excludes every timestamp (cut/ordered/committed times
/// differ between the orderer's copy and a peer's committed copy), so
/// the canonical ledger block and a peer's local commit of the same
/// block hash identically.
uint64_t BlockContentHash(const Block& block,
                          const std::vector<TxValidationResult>& results);

/// Chains a block's content hash onto the running chain hash
/// (prev == kChainHashSeed for the first block).
uint64_t MixChainHash(uint64_t prev, uint64_t content);

/// One link of a peer's committed hash chain, recorded at commit time
/// and audited by the chain-integrity invariant checker
/// (src/core/invariants.h).
struct PeerChainRecord {
  uint64_t number = 0;
  uint64_t content_hash = 0;
  uint64_t chain_hash = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_LEDGER_BLOCK_H_
