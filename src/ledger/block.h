#ifndef FABRICSIM_LEDGER_BLOCK_H_
#define FABRICSIM_LEDGER_BLOCK_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/ledger/transaction.h"

namespace fabricsim {

/// Why the block cutter emitted this block.
enum class BlockCutReason : uint8_t {
  kMaxCount,   ///< reached the configured block size (tx count)
  kTimeout,    ///< block timeout elapsed with pending transactions
  kMaxBytes,   ///< accumulated payload reached the byte limit
  kStreaming,  ///< Streamchain: every transaction is its own "block"
};

/// Per-transaction validation outcome stored in the block metadata,
/// mirroring Fabric's transaction filter bitmap (extended with the
/// MVCC sub-class and the id of the conflicting writer for analysis).
struct TxValidationResult {
  TxValidationCode code = TxValidationCode::kNotValidated;
  MvccClass mvcc_class = MvccClass::kNone;
  /// Transaction that performed the invalidating write (0 if n/a).
  TxId conflicting_tx = 0;
};

/// A block as delivered by the ordering service and annotated by the
/// validators. Both committed and aborted transactions stay in the
/// block, exactly as in Fabric: the ledger is the full history.
struct Block {
  uint64_t number = 0;
  SimTime cut_time = 0;
  BlockCutReason cut_reason = BlockCutReason::kMaxCount;
  std::vector<Transaction> txs;
  std::vector<TxValidationResult> results;

  uint64_t ByteSize() const {
    uint64_t bytes = 128;
    for (const Transaction& tx : txs) bytes += tx.ByteSize();
    return bytes;
  }
};

}  // namespace fabricsim

#endif  // FABRICSIM_LEDGER_BLOCK_H_
