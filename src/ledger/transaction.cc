#include "src/ledger/transaction.h"

namespace fabricsim {

const char* TxValidationCodeToString(TxValidationCode code) {
  switch (code) {
    case TxValidationCode::kValid:
      return "VALID";
    case TxValidationCode::kEndorsementPolicyFailure:
      return "ENDORSEMENT_POLICY_FAILURE";
    case TxValidationCode::kMvccReadConflict:
      return "MVCC_READ_CONFLICT";
    case TxValidationCode::kPhantomReadConflict:
      return "PHANTOM_READ_CONFLICT";
    case TxValidationCode::kAbortedByReordering:
      return "ABORTED_BY_REORDERING";
    case TxValidationCode::kAbortedNotSerializable:
      return "ABORTED_NOT_SERIALIZABLE";
    case TxValidationCode::kNotValidated:
      return "NOT_VALIDATED";
    case TxValidationCode::kDeadlineExpiredEndorse:
      return "DEADLINE_EXPIRED_ENDORSE";
    case TxValidationCode::kDeadlineExpiredOrder:
      return "DEADLINE_EXPIRED_ORDER";
    case TxValidationCode::kDeadlineExpiredCommit:
      return "DEADLINE_EXPIRED_COMMIT";
  }
  return "UNKNOWN";
}

}  // namespace fabricsim
