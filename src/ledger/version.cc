#include "src/ledger/version.h"

#include "src/common/strings.h"

namespace fabricsim {

std::string Version::ToString() const {
  return StrFormat("v%llu.%u", static_cast<unsigned long long>(block_num),
                   tx_num);
}

}  // namespace fabricsim
