#ifndef FABRICSIM_LEDGER_BLOCK_STORE_H_
#define FABRICSIM_LEDGER_BLOCK_STORE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/ledger/block.h"

namespace fabricsim {

/// Append-only chain of validated blocks: the distributed ledger of
/// one peer. Block numbers must be contiguous starting at 1 (block 0
/// is the implicit genesis/bootstrap block, which holds no
/// user transactions).
class BlockStore {
 public:
  /// Appends the next block. Fails unless block.number == height() + 1.
  Status Append(Block block);

  /// Chain height: number of the newest appended block (0 if empty).
  uint64_t height() const { return blocks_.size(); }

  /// Returns block by number (1-based). nullptr when out of range.
  const Block* GetBlock(uint64_t number) const;

  const std::vector<Block>& blocks() const { return blocks_; }

  /// Total transactions across all blocks (valid and failed).
  uint64_t TotalTransactions() const;

 private:
  std::vector<Block> blocks_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_LEDGER_BLOCK_STORE_H_
