#ifndef FABRICSIM_LEDGER_LEDGER_PARSER_H_
#define FABRICSIM_LEDGER_LEDGER_PARSER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/ledger/block_store.h"

namespace fabricsim {

/// Flattened view of one ledger transaction, produced by parsing the
/// blockchain after a run — the paper collects all its metrics this
/// way so that measurement never perturbs the experiment.
struct TxRecord {
  TxId id = 0;
  uint64_t block_number = 0;
  uint32_t tx_index = 0;
  std::string chaincode;
  std::string function;
  TxValidationCode code = TxValidationCode::kNotValidated;
  MvccClass mvcc_class = MvccClass::kNone;
  TxId conflicting_tx = 0;
  bool read_only = false;
  SimTime submit_time = 0;
  SimTime endorsed_time = 0;  ///< all endorsements collected at the client
  SimTime ordered_time = 0;   ///< cut into a block by the ordering service
  SimTime committed_time = 0;

  /// End-to-end latency over all three E-O-V phases.
  SimTime TotalLatency() const { return committed_time - submit_time; }
};

/// Aggregate failure counts for one ledger.
struct LedgerSummary {
  uint64_t total = 0;
  uint64_t valid = 0;
  uint64_t endorsement_policy_failures = 0;
  uint64_t mvcc_intra_block = 0;
  uint64_t mvcc_inter_block = 0;
  uint64_t phantom_read_conflicts = 0;
  uint64_t reordering_aborts = 0;  // Fabric++ in-ordering aborts
  /// Marked invalid because the client deadline had passed by the
  /// block's cut time (overload protection; kDeadlineExpiredCommit).
  uint64_t deadline_expired = 0;

  uint64_t mvcc_total() const { return mvcc_intra_block + mvcc_inter_block; }
  uint64_t failed() const { return total - valid; }

  /// Classifies one validation verdict into the counters — shared by
  /// the post-run ledger parse and the streaming commit-time fold, so
  /// both paths count identically by construction.
  void Count(const TxValidationResult& result);
  void Merge(const LedgerSummary& other);
};

/// Walks a block store and extracts per-transaction records and
/// aggregate failure counts.
class LedgerParser {
 public:
  static std::vector<TxRecord> Parse(const BlockStore& store);
  static LedgerSummary Summarize(const BlockStore& store);
};

}  // namespace fabricsim

#endif  // FABRICSIM_LEDGER_LEDGER_PARSER_H_
