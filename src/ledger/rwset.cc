#include "src/ledger/rwset.h"

#include "src/common/strings.h"

namespace fabricsim {

uint64_t ReadWriteSet::Digest() const {
  uint64_t h = Fnv1a("rwset");
  for (const ReadItem& r : reads) {
    h = Fnv1aCombine(h, r.key);
    h = Fnv1aCombine(h, r.version.block_num);
    h = Fnv1aCombine(h, r.version.tx_num);
    h = Fnv1aCombine(h, static_cast<uint64_t>(r.found));
  }
  for (const WriteItem& w : writes) {
    h = Fnv1aCombine(h, w.key);
    h = Fnv1aCombine(h, w.value);
    h = Fnv1aCombine(h, static_cast<uint64_t>(w.is_delete));
  }
  for (const RangeQueryInfo& rq : range_queries) {
    h = Fnv1aCombine(h, rq.start_key);
    h = Fnv1aCombine(h, rq.end_key);
    h = Fnv1aCombine(h, static_cast<uint64_t>(rq.phantom_check));
    for (const ReadItem& r : rq.reads) {
      h = Fnv1aCombine(h, r.key);
      h = Fnv1aCombine(h, r.version.block_num);
      h = Fnv1aCombine(h, r.version.tx_num);
    }
  }
  return h;
}

uint64_t ReadWriteSet::ByteSize() const {
  uint64_t bytes = 16;
  for (const ReadItem& r : reads) bytes += r.key.size() + 12;
  for (const WriteItem& w : writes) bytes += w.key.size() + w.value.size() + 4;
  for (const RangeQueryInfo& rq : range_queries) {
    bytes += rq.start_key.size() + rq.end_key.size() + 8;
    for (const ReadItem& r : rq.reads) bytes += r.key.size() + 12;
  }
  return bytes;
}

size_t ReadWriteSet::TotalReadCount() const {
  size_t n = reads.size();
  for (const RangeQueryInfo& rq : range_queries) n += rq.reads.size();
  return n;
}

}  // namespace fabricsim
