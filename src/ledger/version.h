#ifndef FABRICSIM_LEDGER_VERSION_H_
#define FABRICSIM_LEDGER_VERSION_H_

#include <cstdint>
#include <string>

namespace fabricsim {

/// A key version in the world state, exactly as Fabric models it:
/// the (block number, transaction number) pair of the transaction that
/// last wrote the key. Every committed write bumps the version.
struct Version {
  uint64_t block_num = 0;
  uint32_t tx_num = 0;

  friend bool operator==(const Version& a, const Version& b) {
    return a.block_num == b.block_num && a.tx_num == b.tx_num;
  }
  friend bool operator!=(const Version& a, const Version& b) {
    return !(a == b);
  }
  friend bool operator<(const Version& a, const Version& b) {
    if (a.block_num != b.block_num) return a.block_num < b.block_num;
    return a.tx_num < b.tx_num;
  }

  std::string ToString() const;
};

/// Version assigned to keys created during world-state bootstrap
/// (before the first block).
inline constexpr Version kBootstrapVersion{0, 0};

}  // namespace fabricsim

#endif  // FABRICSIM_LEDGER_VERSION_H_
