#ifndef FABRICSIM_LEDGER_RWSET_H_
#define FABRICSIM_LEDGER_RWSET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ledger/version.h"

namespace fabricsim {

/// One entry of a transaction read set: the key and the version the
/// endorser observed (Definition 1 in the paper). `found == false`
/// records a read of a key that did not exist at endorsement time.
struct ReadItem {
  std::string key;
  Version version;
  bool found = true;
};

/// One entry of a transaction write set (Definition 2). A delete is a
/// write with `is_delete == true`.
struct WriteItem {
  std::string key;
  std::string value;
  bool is_delete = false;
};

/// Footprint of one range query, kept for phantom-read validation
/// (paper §3.2.3): the queried interval [start_key, end_key) and every
/// key+version the endorser saw inside it. Rich (JSON selector)
/// queries set `phantom_check == false`: Fabric does not re-execute
/// them at validation, so they provide no phantom detection.
struct RangeQueryInfo {
  std::string start_key;
  std::string end_key;
  std::vector<ReadItem> reads;
  bool phantom_check = true;
  std::string rich_selector;
};

/// The read/write set an endorser produces by simulating a transaction.
struct ReadWriteSet {
  std::vector<ReadItem> reads;
  std::vector<WriteItem> writes;
  std::vector<RangeQueryInfo> range_queries;

  /// True when the transaction writes nothing (read-only query).
  bool IsReadOnly() const { return writes.empty(); }

  /// Order-sensitive content hash. Two endorsers agree on a proposal
  /// iff their rw-set digests match; a mismatch is the root cause of
  /// endorsement policy failures (paper Eq. 1).
  uint64_t Digest() const;

  /// Approximate serialized size, used for the block max-bytes cut
  /// rule and network payload costs.
  uint64_t ByteSize() const;

  /// Total number of individual reads including those inside range
  /// queries; drives MVCC validation cost.
  size_t TotalReadCount() const;
};

}  // namespace fabricsim

#endif  // FABRICSIM_LEDGER_RWSET_H_
