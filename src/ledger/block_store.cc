#include "src/ledger/block_store.h"

#include "src/common/strings.h"

namespace fabricsim {

Status BlockStore::Append(Block block) {
  if (block.number != blocks_.size() + 1) {
    return Status::FailedPrecondition(
        StrFormat("expected block %zu, got %llu", blocks_.size() + 1,
                  static_cast<unsigned long long>(block.number)));
  }
  if (block.results.size() != block.txs.size()) {
    return Status::InvalidArgument("block results/txs size mismatch");
  }
  blocks_.push_back(std::move(block));
  return Status::OK();
}

const Block* BlockStore::GetBlock(uint64_t number) const {
  if (number == 0 || number > blocks_.size()) return nullptr;
  return &blocks_[number - 1];
}

uint64_t BlockStore::TotalTransactions() const {
  uint64_t n = 0;
  for (const Block& b : blocks_) n += b.txs.size();
  return n;
}

}  // namespace fabricsim
