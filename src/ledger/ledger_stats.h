#ifndef FABRICSIM_LEDGER_LEDGER_STATS_H_
#define FABRICSIM_LEDGER_LEDGER_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/ledger/block.h"
#include "src/ledger/ledger_parser.h"

namespace fabricsim {

/// Streaming replacement for the canonical BlockStore + post-run
/// LedgerParser pass: every committed block is folded into per-channel
/// failure counts, a latency quantile sketch, in-window commit counts
/// and interblock-gap tracking at commit time, then dropped. Memory is
/// O(channels + sketch buckets) — independent of how many transactions
/// the run commits — which is what lets hour-long 10^4 tps simulations
/// keep flat observability memory. The per-tx classification is the
/// exact LedgerSummary::Count the parser uses, so counts match the
/// dense path bit-for-bit; only latency quantiles are sketch-
/// approximate (within QuantileSketch::kRelativeError).
class StreamingLedgerStats {
 public:
  explicit StreamingLedgerStats(int num_channels);

  /// End of the load window for the committed-throughput count (the
  /// paper only counts commits inside the load phase). Set by
  /// StartLoad before the first block can commit.
  void set_window_end(SimTime window_end) { window_end_ = window_end; }

  /// Folds one reference-peer-committed block (results + committed
  /// times filled in) into the aggregates.
  void OnBlockCommitted(const Block& block);

  /// Aggregate failure counts across all channels.
  const LedgerSummary& summary() const { return total_; }
  const LedgerSummary& channel_summary(ChannelId channel) const {
    return channels_[static_cast<size_t>(channel)].summary;
  }
  int num_channels() const { return static_cast<int>(channels_.size()); }

  /// End-to-end latency over all ledger transactions, in milliseconds.
  const QuantileSketch& latency_ms() const { return latency_ms_; }

  uint64_t committed_in_window() const;
  uint64_t committed_in_window(ChannelId channel) const {
    return channels_[static_cast<size_t>(channel)].committed_in_window;
  }

  /// Widest silence between consecutive block cuts on any channel, in
  /// seconds (the ordering-availability proxy of the dense report).
  double max_interblock_gap_s() const { return max_interblock_gap_s_; }

  uint64_t blocks_committed() const { return blocks_committed_; }

  size_t ApproxMemoryBytes() const;

 private:
  struct ChannelAgg {
    LedgerSummary summary;
    uint64_t committed_in_window = 0;
    SimTime prev_cut = kSimTimeNever;
  };

  std::vector<ChannelAgg> channels_;
  LedgerSummary total_;
  QuantileSketch latency_ms_;
  double max_interblock_gap_s_ = 0.0;
  uint64_t blocks_committed_ = 0;
  SimTime window_end_ = kSimTimeNever;
};

}  // namespace fabricsim

#endif  // FABRICSIM_LEDGER_LEDGER_STATS_H_
