#include "src/ledger/ledger_parser.h"

namespace fabricsim {

std::vector<TxRecord> LedgerParser::Parse(const BlockStore& store) {
  std::vector<TxRecord> records;
  records.reserve(store.TotalTransactions());
  for (const Block& block : store.blocks()) {
    for (size_t i = 0; i < block.txs.size(); ++i) {
      const Transaction& tx = block.txs[i];
      const TxValidationResult& res = block.results[i];
      TxRecord rec;
      rec.id = tx.id;
      rec.block_number = block.number;
      rec.tx_index = static_cast<uint32_t>(i);
      rec.chaincode = tx.chaincode;
      rec.function = tx.function;
      rec.code = res.code;
      rec.mvcc_class = res.mvcc_class;
      rec.conflicting_tx = res.conflicting_tx;
      rec.read_only = tx.read_only;
      rec.submit_time = tx.client_submit_time;
      rec.endorsed_time = tx.endorsed_time;
      rec.ordered_time = tx.ordered_time;
      rec.committed_time = tx.committed_time;
      records.push_back(std::move(rec));
    }
  }
  return records;
}

LedgerSummary LedgerParser::Summarize(const BlockStore& store) {
  LedgerSummary s;
  for (const Block& block : store.blocks()) {
    for (const TxValidationResult& res : block.results) {
      ++s.total;
      switch (res.code) {
        case TxValidationCode::kValid:
          ++s.valid;
          break;
        case TxValidationCode::kEndorsementPolicyFailure:
          ++s.endorsement_policy_failures;
          break;
        case TxValidationCode::kMvccReadConflict:
          if (res.mvcc_class == MvccClass::kIntraBlock) {
            ++s.mvcc_intra_block;
          } else {
            ++s.mvcc_inter_block;
          }
          break;
        case TxValidationCode::kPhantomReadConflict:
          ++s.phantom_read_conflicts;
          break;
        case TxValidationCode::kAbortedByReordering:
          ++s.reordering_aborts;
          break;
        case TxValidationCode::kAbortedNotSerializable:
        case TxValidationCode::kNotValidated:
          break;
      }
    }
  }
  return s;
}

}  // namespace fabricsim
