#include "src/ledger/ledger_parser.h"

namespace fabricsim {

std::vector<TxRecord> LedgerParser::Parse(const BlockStore& store) {
  std::vector<TxRecord> records;
  records.reserve(store.TotalTransactions());
  for (const Block& block : store.blocks()) {
    for (size_t i = 0; i < block.txs.size(); ++i) {
      const Transaction& tx = block.txs[i];
      const TxValidationResult& res = block.results[i];
      TxRecord rec;
      rec.id = tx.id;
      rec.block_number = block.number;
      rec.tx_index = static_cast<uint32_t>(i);
      rec.chaincode = tx.chaincode;
      rec.function = tx.function;
      rec.code = res.code;
      rec.mvcc_class = res.mvcc_class;
      rec.conflicting_tx = res.conflicting_tx;
      rec.read_only = tx.read_only;
      rec.submit_time = tx.client_submit_time;
      rec.endorsed_time = tx.endorsed_time;
      rec.ordered_time = tx.ordered_time;
      rec.committed_time = tx.committed_time;
      records.push_back(std::move(rec));
    }
  }
  return records;
}

void LedgerSummary::Count(const TxValidationResult& result) {
  ++total;
  switch (result.code) {
    case TxValidationCode::kValid:
      ++valid;
      break;
    case TxValidationCode::kEndorsementPolicyFailure:
      ++endorsement_policy_failures;
      break;
    case TxValidationCode::kMvccReadConflict:
      if (result.mvcc_class == MvccClass::kIntraBlock) {
        ++mvcc_intra_block;
      } else {
        ++mvcc_inter_block;
      }
      break;
    case TxValidationCode::kPhantomReadConflict:
      ++phantom_read_conflicts;
      break;
    case TxValidationCode::kAbortedByReordering:
      ++reordering_aborts;
      break;
    case TxValidationCode::kDeadlineExpiredCommit:
      ++deadline_expired;
      break;
    case TxValidationCode::kAbortedNotSerializable:
    case TxValidationCode::kNotValidated:
    case TxValidationCode::kDeadlineExpiredEndorse:
    case TxValidationCode::kDeadlineExpiredOrder:
      break;
  }
}

void LedgerSummary::Merge(const LedgerSummary& other) {
  total += other.total;
  valid += other.valid;
  endorsement_policy_failures += other.endorsement_policy_failures;
  mvcc_intra_block += other.mvcc_intra_block;
  mvcc_inter_block += other.mvcc_inter_block;
  phantom_read_conflicts += other.phantom_read_conflicts;
  reordering_aborts += other.reordering_aborts;
  deadline_expired += other.deadline_expired;
}

LedgerSummary LedgerParser::Summarize(const BlockStore& store) {
  LedgerSummary s;
  for (const Block& block : store.blocks()) {
    for (const TxValidationResult& res : block.results) {
      s.Count(res);
    }
  }
  return s;
}

}  // namespace fabricsim
