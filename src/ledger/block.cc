#include "src/ledger/block.h"

namespace fabricsim {
// Block is a plain aggregate; implementation intentionally empty.
}  // namespace fabricsim
