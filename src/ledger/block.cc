#include "src/ledger/block.h"

namespace fabricsim {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Mix(uint64_t hash, uint64_t value) {
  // FNV-1a over the value's bytes, folded 8 bytes at a time.
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xffull;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

uint64_t BlockContentHash(const Block& block,
                          const std::vector<TxValidationResult>& results) {
  uint64_t hash = kChainHashSeed;
  hash = Mix(hash, block.number);
  hash = Mix(hash, static_cast<uint64_t>(block.cut_reason));
  hash = Mix(hash, block.txs.size());
  for (const Transaction& tx : block.txs) {
    hash = Mix(hash, tx.id);
    hash = Mix(hash, tx.read_only ? 1 : 0);
    hash = Mix(hash, tx.rwset.Digest());
  }
  hash = Mix(hash, results.size());
  for (const TxValidationResult& result : results) {
    hash = Mix(hash, static_cast<uint64_t>(result.code));
    hash = Mix(hash, static_cast<uint64_t>(result.mvcc_class));
    hash = Mix(hash, result.conflicting_tx);
  }
  return hash;
}

uint64_t MixChainHash(uint64_t prev, uint64_t content) {
  uint64_t hash = Mix(prev, content);
  // Guard against the degenerate all-zero fixed point.
  return hash == 0 ? kChainHashSeed : hash;
}

}  // namespace fabricsim
