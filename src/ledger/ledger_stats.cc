#include "src/ledger/ledger_stats.h"

namespace fabricsim {

StreamingLedgerStats::StreamingLedgerStats(int num_channels)
    : channels_(static_cast<size_t>(num_channels < 1 ? 1 : num_channels)) {}

void StreamingLedgerStats::OnBlockCommitted(const Block& block) {
  ChannelAgg& agg = channels_[static_cast<size_t>(block.channel)];
  ++blocks_committed_;
  // Same gap definition as the dense report: consecutive cut times on
  // one channel's chain (blocks commit in order per channel).
  if (agg.prev_cut != kSimTimeNever && block.cut_time > agg.prev_cut) {
    double gap = ToSeconds(block.cut_time - agg.prev_cut);
    if (gap > max_interblock_gap_s_) max_interblock_gap_s_ = gap;
  }
  agg.prev_cut = block.cut_time;
  for (size_t i = 0; i < block.txs.size(); ++i) {
    const Transaction& tx = block.txs[i];
    const TxValidationResult& res = block.results[i];
    agg.summary.Count(res);
    total_.Count(res);
    latency_ms_.Add(ToMillis(tx.committed_time - tx.client_submit_time));
    if (tx.committed_time <= window_end_) ++agg.committed_in_window;
  }
}

uint64_t StreamingLedgerStats::committed_in_window() const {
  uint64_t n = 0;
  for (const ChannelAgg& agg : channels_) n += agg.committed_in_window;
  return n;
}

size_t StreamingLedgerStats::ApproxMemoryBytes() const {
  return sizeof(*this) + channels_.capacity() * sizeof(ChannelAgg) +
         latency_ms_.ApproxMemoryBytes();
}

}  // namespace fabricsim
